//! Seeded synthetic graph generators.
//!
//! The paper evaluates on 12 real KONECT/LAW graphs (Tables 4 and 5), four
//! of them billion-scale. Those datasets are not available offline and do
//! not fit this environment, so the experiment harness substitutes seeded
//! synthetic stand-ins generated here (see DESIGN.md §3). What the paper's
//! results depend on — heavy-tailed power-law degree distributions with
//! concentrated high-degree vertices, plus dense local structure on the web
//! graphs — is exactly what these models reproduce:
//!
//! * [`erdos_renyi`] / [`erdos_renyi_directed`]: uniform G(n, m) baselines
//!   and fuzz inputs,
//! * [`chung_lu`] / [`chung_lu_directed`]: power-law expected degrees
//!   (social / knowledge graphs),
//! * [`barabasi_albert`]: preferential attachment (family-link graphs),
//! * [`rmat`] / [`rmat_directed`]: recursive-matrix web-like graphs with
//!   skewed, clustered structure (EU/IT/SK/UN stand-ins),
//! * [`planted_dense`] / [`planted_st_block`]: background noise plus a
//!   planted dense (sub)graph with a known location, for effectiveness
//!   examples and tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{
    DirectedGraph, DirectedGraphBuilder, UndirectedGraph, UndirectedGraphBuilder, VertexId,
};

/// Uniform undirected G(n, m): `m` edges sampled uniformly (duplicates and
/// loops are dropped by the builder, so the realised edge count can be
/// slightly below `m` on dense settings).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> UndirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = UndirectedGraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build().expect("empty edge set is always valid");
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// Uniform directed G(n, m).
pub fn erdos_renyi_directed(n: usize, m: usize, seed: u64) -> DirectedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DirectedGraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build().expect("empty edge set is always valid");
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// Cumulative-weight sampler over `0..n` with weights `w`.
///
/// Binary search over the cumulative array: `O(log n)` per draw. (An alias
/// table would be `O(1)` per draw but the sampler is not the bottleneck at
/// the scales used here, and this keeps the code simple and allocation-light.)
struct WeightedSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        Self { cumulative, total: acc }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let x = rng.gen_range(0.0..self.total);
        // partition_point returns the first index with cumulative > x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Power-law weight sequence `w_i ∝ (i + i0)^(-1/(γ-1))` normalised to an
/// average expected degree matching `2m/n` (undirected) — the standard
/// Chung–Lu construction for exponent `γ`.
fn power_law_weights(n: usize, gamma: f64) -> Vec<f64> {
    let alpha = 1.0 / (gamma - 1.0);
    (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect()
}

/// Chung–Lu power-law undirected graph: `m` edges with endpoints drawn
/// proportionally to power-law weights with exponent `gamma` (typically
/// 2.0–3.0 for the paper's graph categories).
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> UndirectedGraph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = power_law_weights(n, gamma);
    let sampler = WeightedSampler::new(&weights);
    let mut b = UndirectedGraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build().expect("empty edge set is always valid");
    }
    for _ in 0..m {
        let u = sampler.sample(&mut rng) as VertexId;
        let v = sampler.sample(&mut rng) as VertexId;
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// Chung–Lu power-law directed graph. Out- and in-weights use independent
/// shuffles of the same power-law sequence so that hubs on the two sides
/// are different vertices (matching e.g. the Baidu / Wikilink stand-ins
/// where `d⁺_max ≪ d⁻_max`). `out_gamma` / `in_gamma` control each side.
pub fn chung_lu_directed(
    n: usize,
    m: usize,
    out_gamma: f64,
    in_gamma: f64,
    seed: u64,
) -> DirectedGraph {
    assert!(out_gamma > 1.0 && in_gamma > 1.0, "power-law exponents must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let out_w = power_law_weights(n, out_gamma);
    let mut in_w = power_law_weights(n, in_gamma);
    // Shuffle in-weights so the in-hubs are not the same ids as out-hubs.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        in_w.swap(i, j);
    }
    let out_sampler = WeightedSampler::new(&out_w);
    let in_sampler = WeightedSampler::new(&in_w);
    let mut b = DirectedGraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build().expect("empty edge set is always valid");
    }
    for _ in 0..m {
        let u = out_sampler.sample(&mut rng) as VertexId;
        let v = in_sampler.sample(&mut rng) as VertexId;
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// Seeded configuration-model power-law graph with a configurable
/// exponent: every vertex gets a **realised** target degree
/// `d_i ∝ (i+1)^(-1/(γ-1))` (scaled to `2m` stubs, floor 1), the stub list
/// is shuffled and paired. Unlike [`chung_lu`], whose degrees are only
/// power-law *in expectation*, the tail here is pinned — vertex 0 really
/// is a hub — which is what the iterative-engine benchmark wants when it
/// measures iterations-to-ε on a skewed-degree input (Greedy++/FISTA
/// convergence is driven by the load imbalance the hubs create).
/// Self-loops and duplicate pairs are dropped by the builder, so the
/// realised edge count can land slightly under `m`.
pub fn power_law_configuration(n: usize, m: usize, gamma: f64, seed: u64) -> UndirectedGraph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = UndirectedGraphBuilder::with_capacity(n, m);
    if n < 2 || m == 0 {
        return b.build().expect("empty edge set is always valid");
    }
    let weights = power_law_weights(n, gamma);
    let total: f64 = weights.iter().sum();
    let scale = (2 * m) as f64 / total;
    let mut stubs: Vec<VertexId> = Vec::with_capacity(2 * m + n);
    for (i, &w) in weights.iter().enumerate() {
        let d = ((w * scale).round() as usize).max(1);
        stubs.extend(std::iter::repeat(i as VertexId).take(d));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    // Fisher–Yates, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.gen_range(0..=i);
        stubs.swap(i, j);
    }
    for pair in stubs.chunks_exact(2) {
        b.push_edge(pair[0], pair[1]);
    }
    b.build().expect("generated ids are in range")
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `k` existing vertices chosen proportionally to degree (realised with the
/// classic repeated-endpoint trick: sample uniformly from the edge-endpoint
/// list).
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> UndirectedGraph {
    assert!(k >= 1, "attachment count must be at least 1");
    assert!(n > k, "need more vertices than attachment edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = UndirectedGraphBuilder::with_capacity(n, n * k);
    // Endpoint multiset: sampling uniformly from it is degree-proportional.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    // Seed with a (k+1)-clique so every new vertex has k candidates.
    for u in 0..=(k as VertexId) {
        for v in (u + 1)..=(k as VertexId) {
            b.push_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (k + 1)..n {
        let mut targets: Vec<VertexId> = Vec::with_capacity(k);
        while targets.len() < k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            b.push_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build().expect("generated ids are in range")
}

/// Parameters of the recursive-matrix (R-MAT) model.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability mass of the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant (`1 - a - b - c` up to rounding).
    pub d: f64,
}

impl Default for RmatParams {
    /// The standard Graph500-style skew.
    fn default() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

fn rmat_edge(scale: u32, p: RmatParams, rng: &mut impl Rng) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0u64, 0u64);
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

/// R-MAT undirected graph with `2^scale` vertices and `m` sampled edges —
/// the web-graph stand-in (EU / IT / SK / UN).
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> UndirectedGraph {
    assert!(scale <= 31, "scale must fit in u32 vertex ids");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = UndirectedGraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, params, &mut rng);
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// R-MAT directed graph.
pub fn rmat_directed(scale: u32, m: usize, params: RmatParams, seed: u64) -> DirectedGraph {
    assert!(scale <= 31, "scale must fit in u32 vertex ids");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DirectedGraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, params, &mut rng);
        b.push_edge(u, v);
    }
    b.build().expect("generated ids are in range")
}

/// Appends `count` path filaments of `length` fresh vertices to `g`, each
/// anchored at a random existing vertex.
///
/// Real web graphs contain long, low-degree filament structures; they are
/// what makes convergence-style algorithms (h-index iteration, level
/// peeling) need hundreds to thousands of rounds (paper Table 6), because
/// degree/h-index changes ripple along a path one vertex per round. R-MAT
/// and Chung–Lu samples lack such filaments, so the dataset stand-ins
/// attach them explicitly (lengths chosen per dataset to mirror the
/// paper's Local iteration counts — see `dsd-bench`'s dataset registry).
pub fn attach_filaments(
    g: &UndirectedGraph,
    count: usize,
    length: usize,
    seed: u64,
) -> UndirectedGraph {
    if count == 0 || length == 0 || g.num_vertices() == 0 {
        return g.clone();
    }
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n + count * length;
    let mut b = UndirectedGraphBuilder::with_capacity(total, g.num_edges() + count * length);
    for (u, v) in g.edges() {
        b.push_edge(u, v);
    }
    let mut next = n as VertexId;
    for _ in 0..count {
        let mut prev = rng.gen_range(0..n) as VertexId;
        for _ in 0..length {
            b.push_edge(prev, next);
            prev = next;
            next += 1;
        }
    }
    b.build().expect("ids in range by construction")
}

/// Appends `count` *directed* filaments of `length` fresh vertices to `g`,
/// each anchored at a random existing vertex: a forward chain
/// `c₀ → c₁ → …` doubled with skip arcs `cᵢ → cᵢ₊₂`.
///
/// The skip arcs are what make the tail interesting for the w-induced
/// decomposition (Algorithm 3): interior chain vertices have
/// `d⁺ = d⁻ = 2`, so interior edge weights sit at 4 while the last plain
/// chain edge has weight 2. Peeling at threshold 2 then ripples back along
/// the chain one or two edges per cascade round — removing the tail edge
/// drops its predecessor's out-degree, whose edges fall to weight 2, and
/// so on — giving `O(length)` inner rounds, the directed analogue of the
/// undirected [`attach_filaments`] convergence tails (paper Table 6 / 7
/// regime). A plain directed path would instead peel in one round (all its
/// edges already sit at the minimum weight simultaneously).
pub fn attach_filaments_directed(
    g: &DirectedGraph,
    count: usize,
    length: usize,
    seed: u64,
) -> DirectedGraph {
    if count == 0 || length == 0 || g.num_vertices() == 0 {
        return g.clone();
    }
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n + count * length;
    let mut b = DirectedGraphBuilder::with_capacity(total, g.num_edges() + 2 * count * length);
    for (u, v) in g.edges() {
        b.push_edge(u, v);
    }
    let mut next = n as VertexId;
    for _ in 0..count {
        let anchor = rng.gen_range(0..n) as VertexId;
        let mut prev2 = anchor;
        let mut prev = anchor;
        for i in 0..length {
            b.push_edge(prev, next);
            if i > 0 {
                b.push_edge(prev2, next); // skip arc
            }
            prev2 = prev;
            prev = next;
            next += 1;
        }
    }
    b.build().expect("ids in range by construction")
}

/// Appends `count` *braid* filaments of `length` segments to `g`.
///
/// A braid is a chain of overlapping K4s: segment `i` contributes vertices
/// `aᵢ, bᵢ` with the rung `aᵢ–bᵢ` plus strand edges `aᵢ–aᵢ₊₁`, `bᵢ–bᵢ₊₁`
/// and cross edges `aᵢ–bᵢ₊₁`, `bᵢ–aᵢ₊₁` (interior degree 5). Like the single-strand
/// [`attach_filaments`], convergence-style algorithms need `O(length)`
/// rounds on it (h-index/peeling corrections ripple inward one segment per
/// round from the chain's ends), but the five parallel edges per segment
/// make the ripple **robust to edge sampling**: randomly dropping 20–80%
/// of edges (the paper's Exp-4/Exp-8 protocol) leaves most of the chain
/// intact, so iteration counts grow smoothly with the sampled fraction
/// instead of collapsing the moment a single path edge disappears.
pub fn attach_braids(
    g: &UndirectedGraph,
    count: usize,
    length: usize,
    seed: u64,
) -> UndirectedGraph {
    if count == 0 || length == 0 || g.num_vertices() == 0 {
        return g.clone();
    }
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let total = n + count * length * 2;
    let mut b = UndirectedGraphBuilder::with_capacity(total, g.num_edges() + count * length * 5);
    for (u, v) in g.edges() {
        b.push_edge(u, v);
    }
    let mut next = n as VertexId;
    for _ in 0..count {
        let anchor = rng.gen_range(0..n) as VertexId;
        let mut prev_a = anchor;
        let mut prev_b = anchor;
        for i in 0..length {
            let a = next;
            let bv = next + 1;
            next += 2;
            b.push_edge(a, bv); // rung
            if i == 0 {
                b.push_edge(anchor, a);
            } else {
                b.push_edge(prev_a, a); // strand a
                b.push_edge(prev_b, bv); // strand b
                b.push_edge(prev_a, bv); // cross
                b.push_edge(prev_b, a); // cross
            }
            prev_a = a;
            prev_b = bv;
        }
    }
    b.build().expect("ids in range by construction")
}

/// Sparse background noise plus a planted near-clique.
///
/// The planted block is the first `clique_size` vertices, each pair
/// connected independently with probability `clique_p`. With
/// `clique_p = 1.0` the block is an exact clique of density
/// `(clique_size - 1) / 2`, which dominates any sparse background — so the
/// densest subgraph is the planted block (used by the community-detection
/// example and recovery tests).
pub fn planted_dense(
    n: usize,
    background_m: usize,
    clique_size: usize,
    clique_p: f64,
    seed: u64,
) -> UndirectedGraph {
    assert!(clique_size <= n, "planted block cannot exceed the vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b =
        UndirectedGraphBuilder::with_capacity(n, background_m + clique_size * clique_size / 2);
    for _ in 0..background_m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.push_edge(u, v);
    }
    for u in 0..clique_size {
        for v in (u + 1)..clique_size {
            if rng.gen_bool(clique_p) {
                b.push_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build().expect("generated ids are in range")
}

/// Sparse directed background plus a planted dense `(S, T)` block — the
/// fake-follower scenario from the paper's introduction: `|S|` accounts all
/// linking to `|T|` targets with probability `block_p`.
///
/// `S` is vertices `0..s_size`, `T` is vertices `s_size..s_size + t_size`.
pub fn planted_st_block(
    n: usize,
    background_m: usize,
    s_size: usize,
    t_size: usize,
    block_p: f64,
    seed: u64,
) -> DirectedGraph {
    assert!(s_size + t_size <= n, "planted block cannot exceed the vertex count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DirectedGraphBuilder::with_capacity(n, background_m + s_size * t_size);
    for _ in 0..background_m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.push_edge(u, v);
    }
    for u in 0..s_size {
        for t in 0..t_size {
            if rng.gen_bool(block_p) {
                b.push_edge(u as VertexId, (s_size + t) as VertexId);
            }
        }
    }
    b.build().expect("generated ids are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_deterministic() {
        let g1 = erdos_renyi(100, 300, 42);
        let g2 = erdos_renyi(100, 300, 42);
        assert_eq!(g1, g2);
        assert!(g1.num_edges() > 250); // few duplicates at this density
    }

    #[test]
    fn erdos_renyi_different_seeds_differ() {
        let g1 = erdos_renyi(100, 300, 1);
        let g2 = erdos_renyi(100, 300, 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn erdos_renyi_tiny_n() {
        let g = erdos_renyi(1, 10, 7);
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi(0, 10, 7);
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn power_law_configuration_deterministic_and_skewed() {
        let g1 = power_law_configuration(2000, 10_000, 2.1, 11);
        let g2 = power_law_configuration(2000, 10_000, 2.1, 11);
        assert_eq!(g1, g2);
        assert_ne!(g1, power_law_configuration(2000, 10_000, 2.1, 12));
        // Realised edge count near target; at γ=2.1 the hub absorbs so
        // many stubs that duplicate-pair losses run to ~20%.
        assert!(g1.num_edges() > 7_500, "edges {}", g1.num_edges());
        // Pinned tail: vertex 0 is a genuine hub.
        let avg = 2.0 * g1.num_edges() as f64 / g1.num_vertices() as f64;
        assert!(g1.degree(0) as f64 > 10.0 * avg, "hub degree {}", g1.degree(0));
        // Steeper exponents flatten the tail.
        let flat = power_law_configuration(2000, 10_000, 3.5, 11);
        assert!(flat.max_degree() < g1.max_degree());
    }

    #[test]
    fn power_law_configuration_tiny_inputs() {
        assert_eq!(power_law_configuration(0, 10, 2.5, 1).num_vertices(), 0);
        assert_eq!(power_law_configuration(1, 10, 2.5, 1).num_edges(), 0);
        assert_eq!(power_law_configuration(50, 0, 2.5, 1).num_edges(), 0);
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let g = chung_lu(2000, 10_000, 2.2, 7);
        let max_d = g.max_degree();
        let avg_d = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        // Hubs should be far above the average degree.
        assert!(
            (max_d as f64) > 8.0 * avg_d,
            "max degree {max_d} not heavy-tailed vs avg {avg_d:.1}"
        );
    }

    #[test]
    fn chung_lu_directed_asymmetric_hubs() {
        let g = chung_lu_directed(2000, 10_000, 2.6, 2.05, 11);
        assert!(g.max_in_degree() > 2 * g.max_out_degree());
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let g = barabasi_albert(500, 3, 5);
        // clique seed: C(4,2)=6 edges; then (500-4) * 3.
        assert_eq!(g.num_edges(), 6 + (500 - 4) * 3);
    }

    #[test]
    fn barabasi_albert_connected() {
        let g = barabasi_albert(200, 2, 9);
        let c = crate::components::connected_components(&g);
        assert_eq!(c.count, 1);
    }

    #[test]
    fn rmat_within_bounds() {
        let g = rmat(10, 5000, RmatParams::default(), 13);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 5000);
    }

    #[test]
    fn rmat_directed_deterministic() {
        let g1 = rmat_directed(9, 3000, RmatParams::default(), 17);
        let g2 = rmat_directed(9, 3000, RmatParams::default(), 17);
        assert_eq!(g1, g2);
    }

    #[test]
    fn attach_filaments_adds_paths() {
        let g = erdos_renyi(50, 200, 1);
        let f = attach_filaments(&g, 3, 10, 2);
        assert_eq!(f.num_vertices(), 50 + 30);
        assert_eq!(f.num_edges(), g.num_edges() + 30);
        // Filament interiors have degree 2, tips degree 1.
        let tip_count = (50..80).filter(|&v| f.degree(v as u32) == 1).count();
        assert_eq!(tip_count, 3);
        // Original subgraph is untouched.
        for (u, v) in g.edges() {
            assert!(f.has_edge(u, v));
        }
    }

    #[test]
    fn attach_filaments_directed_structure() {
        let g = erdos_renyi_directed(50, 200, 1);
        let f = attach_filaments_directed(&g, 3, 10, 2);
        assert_eq!(f.num_vertices(), 50 + 30);
        // Each filament: `length` chain arcs + `length - 1` skip arcs.
        assert_eq!(f.num_edges(), g.num_edges() + 3 * (10 + 9));
        // Interior filament vertices have out-degree 2 and in-degree 2; the
        // final vertex of each filament has out-degree 0 and in-degree 2.
        let tails = (50..80).filter(|&v| f.out_degree(v as u32) == 0).count();
        assert_eq!(tails, 3);
        let interior =
            (50..80).filter(|&v| f.out_degree(v as u32) == 2 && f.in_degree(v as u32) == 2).count();
        assert!(interior >= 3 * 6, "filament interiors should be doubled chains");
        for (u, v) in g.edges() {
            assert!(f.has_edge(u, v));
        }
    }

    #[test]
    fn attach_braids_structure() {
        let g = erdos_renyi(50, 200, 1);
        let f = attach_braids(&g, 2, 8, 2);
        assert_eq!(f.num_vertices(), 50 + 2 * 8 * 2);
        // Each braid: 1 anchor edge + 8 rungs + 7 * 4 chain/cross edges.
        assert_eq!(f.num_edges(), g.num_edges() + 2 * (1 + 8 + 7 * 4));
        // Interior braid vertices have degree 5 (rung + 2 strand + 2 cross).
        let interior = (50..f.num_vertices() as u32).filter(|&v| f.degree(v) == 5).count();
        assert!(interior > 0, "braid interiors should have degree 5");
        for (u, v) in g.edges() {
            assert!(f.has_edge(u, v));
        }
    }

    #[test]
    fn attach_braids_core_number_is_three() {
        // The braid is a chain of K4s: core number 3 in isolation.
        let g = UndirectedGraphBuilder::new(1).build().unwrap();
        let f = attach_braids(&g, 1, 10, 3);
        // K4 check on one interior segment: vertices 1,2 (seg 0) 3,4 (seg 1).
        for quad in [[1u32, 2, 3, 4], [3, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(f.has_edge(quad[i], quad[j]), "{:?} not a K4", quad);
                }
            }
        }
    }

    #[test]
    fn attach_filaments_zero_is_identity() {
        let g = erdos_renyi(20, 50, 3);
        assert_eq!(attach_filaments(&g, 0, 10, 1), g);
        assert_eq!(attach_filaments(&g, 5, 0, 1), g);
    }

    #[test]
    fn planted_dense_block_present() {
        let g = planted_dense(1000, 1500, 30, 1.0, 21);
        // Every pair inside the planted clique must be connected.
        for u in 0..30u32 {
            for v in (u + 1)..30 {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn planted_st_block_present() {
        let g = planted_st_block(500, 800, 20, 10, 1.0, 23);
        for u in 0..20u32 {
            for t in 20..30u32 {
                assert!(g.has_edge(u, t));
            }
        }
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let weights = vec![0.0, 10.0, 0.0];
        let sampler = WeightedSampler::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "power-law exponent")]
    fn chung_lu_rejects_bad_gamma() {
        chung_lu(10, 10, 0.5, 0);
    }
}
