#!/usr/bin/env python3
"""Fills EXPERIMENTS.md's <!-- *_TABLE --> placeholders from
experiments_output.txt (the committed run_all capture).

Usage: python3 crates/bench/fill_experiments.py
"""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
OUT = (ROOT / "experiments_output.txt").read_text()
MD_PATH = ROOT / "EXPERIMENTS.md"
md = MD_PATH.read_text()

SECTIONS = {
    "FIG5_TABLE": "Fig 5 (Exp-1)",
    "TABLE6_TABLE": "Table 6 (Exp-2)",
    "FIG6_TABLE": "Fig 6 (Exp-3)",
    "FIG7_TABLE": "Fig 7 (Exp-4)",
    "FIG8_TABLE": "Fig 8 (Exp-5)",
    "TABLE7_TABLE": "Table 7 (Exp-6)",
    "FIG9_TABLE": "Fig 9 (Exp-7)",
    "FIG10_TABLE": "Fig 10 (Exp-8)",
}

def extract(banner_key: str) -> str:
    lines = OUT.splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.startswith("====") and banner_key in line:
            start = i
            break
    if start is None:
        raise SystemExit(f"section {banner_key} not found in experiments_output.txt")
    body = []
    for line in lines[start + 1:]:
        if line.startswith("===="):
            break
        body.append(line)
    # Trim leading/trailing blanks.
    while body and not body[0].strip():
        body.pop(0)
    while body and not body[-1].strip():
        body.pop()
    return "\n".join(body)

for placeholder, banner in SECTIONS.items():
    block = "```text\n" + extract(banner) + "\n```"
    pattern = re.compile(rf"<!-- {placeholder} -->(?:\n```text\n.*?\n```)?", re.S)
    md = pattern.sub(f"<!-- {placeholder} -->\n{block}", md, count=1)

MD_PATH.write_text(md)
print("EXPERIMENTS.md updated from experiments_output.txt")
