//! Synthetic stand-ins for the paper's 12 datasets (Tables 4 and 5).
//!
//! The real graphs (KONECT / LAW, up to 5.5 billion edges) are unavailable
//! offline and beyond this environment, so each dataset is replaced by a
//! seeded synthetic graph whose *category* drives the generator choice
//! (see DESIGN.md §3):
//!
//! * family-link / knowledge graphs → Chung–Lu power-law,
//! * web graphs (EU / IT / SK / UN) → R-MAT,
//! * e-commerce / social directed graphs → directed Chung–Lu with
//!   asymmetric out/in exponents matched to the paper's `d⁺_max` vs
//!   `d⁻_max` skew (e.g. Amazon's tiny `d⁺_max = 10` vs large `d⁻_max`).
//!
//! Sizes are scaled down ~100–1000× so the full experiment suite runs on a
//! laptop-class single-core container; the relative ordering of the sizes
//! mirrors the paper (PT < EW < EU < IT < SK < UN, AM < AR < BA < DL < WE
//! < TW).

use dsd_graph::gen::{self, RmatParams};
use dsd_graph::{DirectedGraph, UndirectedGraph};

/// An undirected dataset stand-in.
#[derive(Clone, Copy, Debug)]
pub struct UndirectedDataset {
    /// Paper abbreviation (Table 4).
    pub abbr: &'static str,
    /// Full dataset name in the paper.
    pub name: &'static str,
    /// Category from Table 4.
    pub category: &'static str,
}

/// A directed dataset stand-in.
#[derive(Clone, Copy, Debug)]
pub struct DirectedDataset {
    /// Paper abbreviation (Table 5).
    pub abbr: &'static str,
    /// Full dataset name in the paper.
    pub name: &'static str,
    /// Category from Table 5.
    pub category: &'static str,
}

/// The six undirected datasets of Table 4, in the paper's order.
pub const UNDIRECTED: [UndirectedDataset; 6] = [
    UndirectedDataset { abbr: "PT", name: "Petster", category: "Family link" },
    UndirectedDataset { abbr: "EW", name: "eswiki-2013", category: "Knowledge" },
    UndirectedDataset { abbr: "EU", name: "eu-2015", category: "Web" },
    UndirectedDataset { abbr: "IT", name: "it-2004", category: "Web" },
    UndirectedDataset { abbr: "SK", name: "sk-2005", category: "Web" },
    UndirectedDataset { abbr: "UN", name: "uk-union", category: "Web" },
];

/// The six directed datasets of Table 5, in the paper's order.
pub const DIRECTED: [DirectedDataset; 6] = [
    DirectedDataset { abbr: "AM", name: "Amazon", category: "E-commerce" },
    DirectedDataset { abbr: "AR", name: "Amazon ratings", category: "E-commerce" },
    DirectedDataset { abbr: "BA", name: "Baidu", category: "Knowledge" },
    DirectedDataset { abbr: "DL", name: "DBpedialinks", category: "Knowledge" },
    DirectedDataset { abbr: "WE", name: "Wikilink_en", category: "Knowledge" },
    DirectedDataset { abbr: "TW", name: "Twitter", category: "Social" },
];

/// Generates the stand-in for an undirected dataset abbreviation.
///
/// # Panics
///
/// Panics on an unknown abbreviation.
pub fn load_undirected(abbr: &str) -> UndirectedGraph {
    // Braid-filament lengths mirror the paper's Table 6 Local iteration
    // counts (PT 28, EW 24, EU 860, IT 1761, SK 3009, UN 2396): h-index
    // and peeling convergence ripple along the braids one segment per
    // round, and the real web graphs owe their long convergence tails to
    // such low-degree chain structures. Braids (chains of overlapping
    // K4s) rather than single paths keep the ripple intact under the
    // Exp-4 edge-sampling protocol (see `dsd_graph::gen::attach_braids`).
    match abbr {
        // Family-link graph: preferential-attachment-like hubs.
        "PT" => with_braids(gen::chung_lu(20_000, 100_000, 2.1, 0xD501), 6, 30, 0xF101),
        // Knowledge graph: power-law with slightly lighter tail.
        "EW" => with_braids(gen::chung_lu(30_000, 160_000, 2.2, 0xD502), 6, 25, 0xF102),
        // Web graphs: R-MAT, growing sizes.
        "EU" => with_braids(gen::rmat(15, 240_000, RmatParams::default(), 0xD503), 6, 850, 0xF103),
        "IT" => {
            with_braids(gen::rmat(16, 420_000, RmatParams::default(), 0xD504), 6, 1_750, 0xF104)
        }
        "SK" => {
            with_braids(gen::rmat(16, 640_000, RmatParams::default(), 0xD505), 6, 3_000, 0xF105)
        }
        "UN" => {
            with_braids(gen::rmat(17, 900_000, RmatParams::default(), 0xD506), 6, 2_400, 0xF106)
        }
        other => panic!("unknown undirected dataset {other}"),
    }
}

fn with_braids(g: UndirectedGraph, count: usize, length: usize, seed: u64) -> UndirectedGraph {
    gen::attach_braids(&g, count, length, seed)
}

/// Generates the stand-in for a directed dataset abbreviation.
///
/// # Panics
///
/// Panics on an unknown abbreviation.
pub fn load_directed(abbr: &str) -> DirectedGraph {
    // The paper's Table 7 shows two regimes: on the small e-commerce
    // graphs (AM, AR) the w*-induced subgraph IS the hub star and the
    // three PWC columns coincide, while the large knowledge/social graphs
    // contain dense (S, T) communities that beat any single hub, so the
    // columns shrink strictly. The stand-ins reproduce both regimes: AM
    // and AR are plain skewed Chung–Lu samples; the rest get a planted
    // dense block whose density exceeds the best hub star's √d_max.
    match abbr {
        // Amazon co-purchase: tiny out-degrees, moderate in-hubs.
        "AM" => gen::chung_lu_directed(20_000, 80_000, 3.5, 2.4, 0xD511),
        // Amazon ratings: both sides skewed.
        "AR" => gen::chung_lu_directed(30_000, 110_000, 2.6, 2.4, 0xD512),
        // Baidu: in-hubs much larger than out-hubs.
        "BA" => plant_block(
            gen::chung_lu_directed(25_000, 140_000, 2.8, 2.1, 0xD513),
            200,
            150,
            0.7,
            0xB113,
        ),
        // DBpedia links.
        "DL" => plant_block(
            gen::chung_lu_directed(40_000, 220_000, 2.6, 2.1, 0xD514),
            220,
            170,
            0.7,
            0xB114,
        ),
        // English Wikipedia links.
        "WE" => plant_block(
            gen::chung_lu_directed(50_000, 320_000, 2.5, 2.05, 0xD515),
            300,
            220,
            0.7,
            0xB115,
        ),
        // Twitter: the largest, heavy tails on both sides.
        "TW" => plant_block(
            gen::chung_lu_directed(60_000, 420_000, 2.2, 2.02, 0xD516),
            400,
            300,
            0.5,
            0xB116,
        ),
        other => panic!("unknown directed dataset {other}"),
    }
}

/// Directed Chung–Lu benchmark body used by the DDS engine measurements in
/// `bench_report` (`BENCH_PR2.json`): `n ≈ 4000·scale`, `m ≈ 32000·scale`,
/// asymmetric exponents (out 2.3 / in 2.1) like the knowledge-graph
/// stand-ins above. Deterministic for a given `scale`.
pub fn directed_chung_lu_bench(scale: f64) -> DirectedGraph {
    let n = (4_000.0 * scale) as usize;
    let m = (32_000.0 * scale) as usize;
    gen::chung_lu_directed(n.max(100), m.max(500), 2.3, 2.1, 44)
}

/// The filament-tailed variant of [`directed_chung_lu_bench`]: four
/// skip-arc chains of length `≈ 600·√scale` hang off the body, giving the
/// w-induced cascade an `O(length)` ripple per outer threshold — the
/// directed analogue of the undirected filament graph the sweep-engine
/// benchmarks use (`dsd_graph::gen::attach_filaments_directed`).
pub fn directed_filament_bench(scale: f64) -> DirectedGraph {
    let base = directed_chung_lu_bench(scale);
    let len = (600.0 * scale.sqrt()) as usize;
    gen::attach_filaments_directed(&base, 4, len.max(20), 45)
}

/// Appends a dense `(S, T)` block on fresh vertex ids: `s_size` sources
/// each linking to each of `t_size` targets with probability `p`.
fn plant_block(
    base: DirectedGraph,
    s_size: usize,
    t_size: usize,
    p: f64,
    seed: u64,
) -> DirectedGraph {
    use rand::{Rng, SeedableRng};
    let n = base.num_vertices();
    let total = n + s_size + t_size;
    let mut b =
        dsd_graph::DirectedGraphBuilder::with_capacity(total, base.num_edges() + s_size * t_size);
    for (u, v) in base.edges() {
        b.push_edge(u, v);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for s in 0..s_size {
        for t in 0..t_size {
            if rng.gen_bool(p) {
                b.push_edge((n + s) as u32, (n + s_size + t) as u32);
            }
        }
    }
    b.build().expect("ids in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_undirected_load_and_are_nonempty() {
        for d in UNDIRECTED {
            let g = load_undirected(d.abbr);
            assert!(g.num_edges() > 10_000, "{} too small", d.abbr);
        }
    }

    #[test]
    fn all_directed_load_and_are_nonempty() {
        for d in DIRECTED {
            let g = load_directed(d.abbr);
            assert!(g.num_edges() > 10_000, "{} too small", d.abbr);
        }
    }

    #[test]
    fn sizes_ordered_like_the_paper() {
        let mut prev = 0;
        for d in UNDIRECTED {
            let m = load_undirected(d.abbr).num_edges();
            assert!(m > prev, "{} breaks the size ordering", d.abbr);
            prev = m;
        }
        let mut prev = 0;
        for d in DIRECTED {
            let m = load_directed(d.abbr).num_edges();
            assert!(m > prev, "{} breaks the size ordering", d.abbr);
            prev = m;
        }
    }

    #[test]
    fn amazon_has_small_out_hubs() {
        // Matches the paper's d+max(AM) = 10 << d-max(AM) = 2751 skew.
        let g = load_directed("AM");
        assert!(g.max_out_degree() * 4 < g.max_in_degree());
    }

    #[test]
    fn directed_bench_constructors() {
        let body = directed_chung_lu_bench(0.1);
        assert!(body.num_vertices() >= 100);
        assert!(body.num_edges() >= 500);
        let tailed = directed_filament_bench(0.1);
        // The filament variant strictly extends the body: 4 tails, each
        // adding `len` chain arcs plus `len - 1` skip arcs.
        assert!(tailed.num_vertices() > body.num_vertices());
        assert!(tailed.num_edges() > body.num_edges());
        assert_eq!(directed_chung_lu_bench(0.1), directed_chung_lu_bench(0.1));
        assert_eq!(directed_filament_bench(0.1), directed_filament_bench(0.1));
    }

    #[test]
    fn loading_is_deterministic() {
        let a = load_undirected("PT");
        let b = load_undirected("PT");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown undirected dataset")]
    fn unknown_abbr_panics() {
        load_undirected("XX");
    }
}
