//! Regenerates Fig 10 (Exp-8): DDS scalability vs edge sample fraction.
fn main() {
    dsd_bench::experiments::fig10_dds_scalability::run();
}
