//! Regenerates Table 7 (Exp-6): sizes of the graphs processed by PWC/PXY.
fn main() {
    dsd_bench::experiments::table7_sizes::run();
}
