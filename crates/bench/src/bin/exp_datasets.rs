//! Regenerates Tables 4 and 5 (dataset statistics).
fn main() {
    dsd_bench::experiments::datasets_tables::run();
}
