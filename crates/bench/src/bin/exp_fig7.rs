//! Regenerates Fig 7 (Exp-4): UDS scalability vs edge sample fraction.
fn main() {
    dsd_bench::experiments::fig7_uds_scalability::run();
}
