//! Regenerates Fig 6 (Exp-3): UDS thread sweep.
fn main() {
    dsd_bench::experiments::fig6_uds_threads::run();
}
