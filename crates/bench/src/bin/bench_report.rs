//! `bench_report` — the perf-trajectory baseline emitter.
//!
//! Times the h-index sweep engine (legacy collect-per-sweep kernel vs the
//! workspace-reuse engine in sync and async modes, plus the frontier
//! schedule), the DDS edge-frontier peeling engine (legacy Algorithm 3
//! kernel vs `dds::peel::PeelWorkspace`), the graph-ingest engine (PR 4:
//! counting-sort CSR builders vs the legacy global-sort oracles, the
//! chunked parallel text parser vs the serial reader, and the direct CSR
//! reorder vs the builder round-trip, on a million-edge synthetic edge
//! multiset), the exact-flow engine (PR 5: the parallel push-relabel
//! solver vs Dinic raw on a layered network, and the seeded, core-pruned
//! exact UDS/DDS oracles vs their float/Dinic legacy binary searches), the
//! compressed substrate (PR 6: achieved bytes/arc with and without the
//! degree reorder, fused-decode sweep/peel vs their plain-CSR twins, the
//! binio v2 mmap round-trip, and the spill-mode bounded-RSS ingest vs both
//! in-memory builders), the iterative near-optimal engine (PR 7:
//! exact-certified Greedy++/FISTA vs the full exact oracle on a seeded
//! power-law benchmark, iterations-to-ε off the dual-gap trajectory, and
//! plain/compressed bit-parity at pool sizes 1/2/4), the flight recorder
//! (PR 8: disabled-probe cost, the < 2% recorder-off overhead disclosure,
//! the recorder-on wall ratio, and round-shape histogram pool
//! invariance), and
//! the paper's two contributed algorithms end-to-end (PKMC and PWC) on the
//! seeded stand-in graphs; verifies the parity contracts (UDS sync mode
//! bit-identical to the seed kernel; DDS induce-numbers and `w*`
//! bit-identical to the legacy kernel; every ingest path bit-identical
//! to its legacy oracle; PWC identical across rayon pool sizes {1, 2, 4};
//! push-relabel values equal to Dinic with min-cut capacity equal to flow,
//! and exact densities pool-size invariant); and writes a machine-readable
//! report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dsd-bench --bin bench_report \
//!     [-- --smoke] [-- --trace] [-- --out BENCH_PR8.json]
//! ```
//!
//! The default output path is `BENCH_PR8.json` in the current directory
//! (run from the repo root to refresh the committed baseline). Scale the
//! workload with `DSD_BENCH_SCALE` (default 1.0; CI can lower it).
//! `--smoke` is the CI fast mode: tiny graphs, one rep, output defaulting
//! to `BENCH_SMOKE.json` — it exists so the binary and its JSON schema
//! cannot bit-rot (the emitted JSON is re-parsed before exit either way).
//!
//! `--trace` additionally turns the telemetry recorder on for one extra
//! (untimed) UDS sweep run and one DDS peel run and embeds their
//! per-round [`dsd_telemetry::DecompositionTrace`]s as a `telemetry`
//! section; all timed measurements run with the recorder off, so the
//! timings are the disabled-path numbers either way. Render the section
//! with the `trace_report` binary.

use std::time::{Duration, Instant};

use dsd_bench::datasets::{directed_chung_lu_bench, directed_filament_bench};
use dsd_core::dds::peel::PeelWorkspace;
use dsd_core::dds::winduced::{
    w_decomposition_in, w_decomposition_legacy, w_star_decomposition_in,
    w_star_decomposition_legacy, WDecomposition,
};
use dsd_core::dynamic::{
    scratch_directed, scratch_undirected, DynamicDirectedState, DynamicUndirectedState,
};
use dsd_core::runner::with_threads;
use dsd_core::uds::local::{
    local_decomposition_async_in, local_decomposition_frontier_in, local_decomposition_in,
    local_decomposition_legacy,
};
use dsd_core::uds::pkmc::{pkmc_in, PkmcConfig};
use dsd_core::uds::sweep::{SweepMode, SweepWorkspace};
use dsd_graph::delta::{apply_directed, apply_undirected, DeltaBatch};
use dsd_graph::{DirectedGraph, UndirectedGraph, VertexId};
use serde::Serialize;

/// One timed kernel/algorithm entry.
#[derive(Serialize)]
struct Timing {
    name: &'static str,
    /// Best-of-`reps` wall seconds (the paper's reporting convention).
    best_secs: f64,
    /// Mean over `reps` wall seconds.
    mean_secs: f64,
    reps: usize,
    /// Convergence sweeps / rounds of the last run.
    iterations: usize,
}

#[derive(Serialize)]
struct GraphMeta {
    name: &'static str,
    vertices: usize,
    edges: usize,
    description: &'static str,
}

#[derive(Serialize)]
struct Parity {
    /// Engine sync core numbers == seed-kernel core numbers.
    core_numbers_identical: bool,
    /// Engine sync iteration count == seed-kernel iteration count.
    iteration_counts_identical: bool,
    /// Both hold at every rayon pool size tried.
    pool_sizes: Vec<usize>,
    /// Async fixpoint equals the sync core numbers.
    async_fixpoint_identical: bool,
    /// Async sweeps needed (last run) vs sync sweeps — the ablation datum.
    sync_sweeps: usize,
    async_sweeps: usize,
}

#[derive(Serialize)]
struct DdsParity {
    /// Engine induce-numbers == legacy-kernel induce-numbers, at every
    /// pool size tried.
    induce_numbers_identical: bool,
    /// Engine `w*` == legacy `w*`, at every pool size tried.
    w_star_identical: bool,
    /// Engine `w*`-subgraph edge list == legacy, at every pool size tried.
    w_star_edges_identical: bool,
    /// Pool sizes the DDS checks ran at.
    pool_sizes: Vec<usize>,
    /// `pwc` returns identical `(S, T)`, cn-pair, and `w*` at every pool
    /// size tried.
    pwc_identical_across_pools: bool,
}

/// The PR-2 DDS section: edge-frontier peeling engine vs the legacy
/// Algorithm 3 kernel.
#[derive(Serialize)]
struct DdsSection {
    engine: Vec<Timing>,
    /// `w_decomposition_legacy_filament_best /
    /// w_decomposition_engine_filament_best` — the PR-2 acceptance headline
    /// (target >= 1.3). The full decomposition on the filament-tailed
    /// directed benchmark is the long-cascade regime the frontier engine
    /// targets; the warm-started `w*` runs bulk-peel everything below
    /// `d_max` in a few rounds on either kernel (the Remark's whole point),
    /// so they are reported but carry no headline.
    speedup_engine_vs_legacy: f64,
    parity: DdsParity,
}

#[derive(Serialize)]
struct IngestParity {
    /// Counting-sort `build()` == `build_legacy()` on the raw multiset, at
    /// every pool size tried.
    undirected_build_identical: bool,
    /// Directed counterpart (both CSR directions compared).
    directed_build_identical: bool,
    /// Chunked parallel reader == serial reader on the text edge list.
    parse_identical: bool,
    /// Direct CSR permutation == legacy builder round-trip reorder.
    reorder_identical: bool,
    /// Pool sizes the ingest parity checks ran at.
    pool_sizes: Vec<usize>,
}

/// The PR-4 ingest section: counting-sort CSR construction, chunked
/// parallel parsing, and direct CSR reordering vs their legacy oracles.
#[derive(Serialize)]
struct IngestSection {
    /// The raw synthetic multiset the builder timings consume (duplicates
    /// and self-loops included, as real edge lists have).
    raw_edges: usize,
    /// Vertex-range of the synthetic multiset.
    raw_vertices: usize,
    timings: Vec<Timing>,
    /// `build_legacy / build` on the undirected multiset — the PR-4
    /// acceptance headline (target >= 1.5).
    speedup_build_vs_legacy_undirected: f64,
    /// `build_legacy / build` on the directed multiset.
    speedup_build_vs_legacy_directed: f64,
    /// Serial line-at-a-time reader / chunked parallel reader, end to end
    /// (parse + build on both sides).
    speedup_parse_vs_serial: f64,
    /// Legacy builder-round-trip reorder / direct CSR permutation.
    speedup_reorder_vs_legacy: f64,
    parity: IngestParity,
}

#[derive(Serialize)]
struct FlowParity {
    /// Push-relabel max-flow value == Dinic value on every raw network
    /// tried (integer capacities, so equality is exact).
    raw_flow_identical: bool,
    /// Extracted min-cut s-side capacity == max-flow value on every raw
    /// network tried (the duality certificate).
    cut_capacity_identical: bool,
    /// `uds_exact` (push-relabel engine) density == `uds_exact_legacy`
    /// (Dinic) density on every benchmark graph.
    uds_exact_identical: bool,
    /// `dds_exact` density == `dds_exact_legacy` density (1e-6, the legacy
    /// oracle's own binary-search tolerance).
    dds_exact_identical: bool,
    /// Engine UDS exact density bitwise identical at every pool size tried
    /// (integer flow arithmetic makes the optimum schedule-invariant).
    uds_pool_invariant: bool,
    /// Engine DDS exact density identical (1e-9) at every pool size tried.
    dds_pool_invariant: bool,
    /// Pool sizes the flow parity checks ran at.
    pool_sizes: Vec<usize>,
}

/// The PR-5 flow section: parallel push-relabel exact engine vs the Dinic
/// legacy oracle, raw and end-to-end through both exact solvers.
#[derive(Serialize)]
struct FlowSection {
    timings: Vec<Timing>,
    /// `uds_exact_legacy_best / uds_exact_certified_best` — the PR-5
    /// acceptance headline (engine + PKMC seed + core pruning vs the
    /// float/Dinic binary search).
    speedup_uds_exact_vs_legacy: f64,
    /// `dds_exact_legacy_best / dds_exact_certified_best`.
    speedup_dds_exact_vs_legacy: f64,
    /// Raw `PushRelabel::max_flow / Dinic::max_flow` on the layered
    /// network (no oracle logic on either side).
    speedup_push_relabel_vs_dinic: f64,
    parity: FlowParity,
}

#[derive(Serialize)]
struct CompressionParity {
    /// Fused-decode full sweep h-values bit-identical to the plain-CSR
    /// engine at every pool size tried.
    sweep_fused_identical: bool,
    /// Fused-decode peel induce-numbers and `w*` bit-identical to the
    /// plain-CSR engine at every pool size tried.
    peel_fused_identical: bool,
    /// `CompressedCsr`/`CompressedDigraph::decompress()` equal the input
    /// graphs.
    decompress_roundtrip_identical: bool,
    /// `write binio v2 -> load (mmap) -> decompress` equals the input
    /// graphs for both kinds.
    binio_v2_roundtrip_identical: bool,
    /// `build_spill == build == build_legacy` on the raw multiset
    /// (undirected and directed), at every pool size tried.
    spill_build_identical: bool,
    /// Pool sizes the compression parity checks ran at.
    pool_sizes: Vec<usize>,
}

/// The PR-6 compression section: delta-varint substrate space figures,
/// fused-decode kernel costs vs plain CSR, and the spill-mode ingest.
#[derive(Serialize)]
struct CompressionSection {
    /// Encoded bytes per stored arc (degree + offset + chunk tables
    /// included) on the degree-reordered filament graph. Plain CSR spends
    /// 4.0 on the adjacency array alone, so < 4.0 is a genuine win.
    bytes_per_arc_undirected: f64,
    /// Same figure without the degree reorder (the `--no-reorder` path).
    bytes_per_arc_undirected_no_reorder: f64,
    /// Both sides of the degree-reordered directed benchmark.
    bytes_per_arc_directed: f64,
    /// The plain-CSR adjacency baseline the figures above compare against.
    plain_csr_bytes_per_arc: f64,
    /// Encode throughput on the undirected graph (arcs / best encode sec).
    encode_arcs_per_sec_undirected: f64,
    /// Shard cap the spill builds ran with (forced small so the smoke run
    /// streams multiple shards).
    spill_shard_arcs: usize,
    /// Shards each undirected spill build streamed
    /// (`ceil(arcs / shard_arcs)`, exact by the flush arithmetic).
    spill_shards: usize,
    timings: Vec<Timing>,
    /// `sweep_plain_best / sweep_fused_best` — a cost ratio, not a target:
    /// fused decode trades cycles for the space win above.
    ratio_fused_sweep_vs_plain: f64,
    /// `peel_plain_best / peel_fused_best` (same convention).
    ratio_fused_peel_vs_plain: f64,
    parity: CompressionParity,
}

/// Times and parity-checks the PR-6 compressed substrate: encode cost and
/// achieved bytes/arc, the fused-decode sweep/peel kernels against their
/// plain-CSR twins, the binio v2 round-trip, and the spill-mode ingest
/// against both in-memory builders. Every parity flag is asserted, so a
/// divergence aborts the run.
fn compression_section(
    g: &UndirectedGraph,
    d: &dsd_graph::DirectedGraph,
    scale: f64,
    reps: usize,
) -> CompressionSection {
    use dsd_graph::{
        CompressedCsr, CompressedDigraph, DirectedGraphBuilder, DirectedStorage,
        UndirectedGraphBuilder, UndirectedStorage,
    };
    fn one<T>(_: &T) -> usize {
        1
    }

    // Degree reorder first — the CLI `pack` default — then compress; the
    // unreordered figure quantifies what the reorder buys.
    let rg = dsd_graph::reorder::by_degree_descending(g).graph;
    let rd = dsd_graph::reorder::by_degree_descending_directed(d).graph;
    let encode_u =
        timing("compress_encode_undirected", reps, one, || CompressedCsr::from_graph(&rg));
    let encode_d =
        timing("compress_encode_directed", reps, one, || CompressedDigraph::from_graph(&rd));
    let cu = CompressedCsr::from_graph(&rg);
    let cu_no_reorder = CompressedCsr::from_graph(g);
    let cd = CompressedDigraph::from_graph(&rd);
    let arcs_u = 2 * rg.num_edges();

    // Fused-decode kernels vs their plain-CSR twins on identical inputs.
    let mut ws = SweepWorkspace::new();
    let iters = |&it: &usize| it;
    let sweep_plain = timing("sweep_full_plain_csr", reps, iters, || {
        ws.run_full_storage(&UndirectedStorage::Plain(&rg), SweepMode::Synchronous)
    });
    let sweep_fused = timing("sweep_full_fused_decode", reps, iters, || {
        ws.run_full_storage(&UndirectedStorage::Compressed(&cu), SweepMode::Synchronous)
    });
    let mut pws = PeelWorkspace::new();
    let wd_iters = |r: &WDecomposition| r.stats.iterations;
    let peel_plain = timing("peel_w_star_plain_csr", reps, wd_iters, || {
        pws.decompose_storage(&DirectedStorage::Plain(&rd), true)
    });
    let peel_fused = timing("peel_w_star_fused_decode", reps, wd_iters, || {
        pws.decompose_storage(&DirectedStorage::Compressed(&cd), true)
    });

    // Spill-mode ingest on the raw multiset, shard cap forced low enough
    // that even the smoke run streams several shards.
    let (n, edges) = raw_edge_multiset(scale);
    let shard_arcs = (edges.len() / 4).max(1024);
    let valid_edges = edges.iter().filter(|&&(u, v)| u != v).count();
    // Mode::Both pushes two arcs per non-loop edge; windows flush at the
    // cap, so the shard count is exact.
    let spill_shards = (2 * valid_edges).div_ceil(shard_arcs).max(1);
    assert!(spill_shards >= 2, "compression: spill run must stream at least two shards");
    let spill_u = timing("build_undirected_spill", reps, one, || {
        UndirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied())
            .build_spill(shard_arcs)
            .unwrap()
    });
    let spill_d = timing("build_directed_spill", reps, one, || {
        DirectedGraphBuilder::new(n)
            .add_edges(edges.iter().copied())
            .build_spill(shard_arcs)
            .unwrap()
    });

    // --- Parity: fused kernels vs plain CSR at pool sizes {1, 2, 4}. ---
    let pool_sizes = vec![1usize, 2, 4];
    let sweep_ref = {
        let mut w = SweepWorkspace::new();
        w.run_full(&rg, SweepMode::Synchronous);
        w.h_values()
    };
    let peel_ref = PeelWorkspace::new().decompose_storage(&DirectedStorage::Plain(&rd), false);
    let mut sweep_ok = true;
    let mut peel_ok = true;
    for &p in &pool_sizes {
        let h = with_threads(p, || {
            let mut w = SweepWorkspace::new();
            w.run_full_storage(&UndirectedStorage::Compressed(&cu), SweepMode::Synchronous);
            w.h_values()
        });
        sweep_ok &= h == sweep_ref;
        let wd = with_threads(p, || {
            PeelWorkspace::new().decompose_storage(&DirectedStorage::Compressed(&cd), false)
        });
        peel_ok &= wd.induce_number == peel_ref.induce_number && wd.w_star == peel_ref.w_star;
    }

    // --- Decompress + binio v2 (mmap) round-trips. ---
    let roundtrip_ok = cu.decompress() == rg && cd.decompress() == rd;
    let stamp = std::process::id();
    let tmp_u = std::env::temp_dir().join(format!("dsd-bench-pack-u-{stamp}.bin"));
    let tmp_d = std::env::temp_dir().join(format!("dsd-bench-pack-d-{stamp}.bin"));
    dsd_graph::binio::write_compressed_undirected_path(&cu, &tmp_u).unwrap();
    dsd_graph::binio::write_compressed_directed_path(&cd, &tmp_d).unwrap();
    let binio_ok = dsd_graph::binio::load_compressed_undirected_path(&tmp_u).unwrap().decompress()
        == rg
        && dsd_graph::binio::load_compressed_directed_path(&tmp_d).unwrap().decompress() == rd;
    let _ = std::fs::remove_file(&tmp_u);
    let _ = std::fs::remove_file(&tmp_d);

    // --- Spill parity: build_spill == build == build_legacy, all pools. ---
    let u_built = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
    let u_legacy =
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap();
    let d_built = DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
    let d_legacy =
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap();
    let mut spill_ok = u_built == u_legacy && d_built == d_legacy;
    for &p in &pool_sizes {
        let (us, ds) = with_threads(p, || {
            (
                UndirectedGraphBuilder::new(n)
                    .add_edges(edges.iter().copied())
                    .build_spill(shard_arcs)
                    .unwrap(),
                DirectedGraphBuilder::new(n)
                    .add_edges(edges.iter().copied())
                    .build_spill(shard_arcs)
                    .unwrap(),
            )
        });
        spill_ok &= us == u_built && ds == d_built;
    }

    assert!(sweep_ok, "compression parity: fused-decode sweep diverged from plain CSR");
    assert!(peel_ok, "compression parity: fused-decode peel diverged from plain CSR");
    assert!(roundtrip_ok, "compression parity: decompress() round-trip diverged");
    assert!(binio_ok, "compression parity: binio v2 mmap round-trip diverged");
    assert!(spill_ok, "compression parity: build_spill diverged from build()/build_legacy()");
    let bytes_per_arc = cu.bytes_per_arc();
    assert!(
        bytes_per_arc < 4.0,
        "compression: {bytes_per_arc:.3} bytes/arc does not beat the 4-byte plain CSR entry"
    );

    CompressionSection {
        bytes_per_arc_undirected: bytes_per_arc,
        bytes_per_arc_undirected_no_reorder: cu_no_reorder.bytes_per_arc(),
        bytes_per_arc_directed: cd.bytes_per_arc(),
        plain_csr_bytes_per_arc: 4.0,
        encode_arcs_per_sec_undirected: arcs_u as f64 / encode_u.best_secs.max(1e-12),
        spill_shard_arcs: shard_arcs,
        spill_shards,
        ratio_fused_sweep_vs_plain: sweep_plain.best_secs / sweep_fused.best_secs.max(1e-12),
        ratio_fused_peel_vs_plain: peel_plain.best_secs / peel_fused.best_secs.max(1e-12),
        timings: vec![
            encode_u,
            encode_d,
            sweep_plain,
            sweep_fused,
            peel_plain,
            peel_fused,
            spill_u,
            spill_d,
        ],
        parity: CompressionParity {
            sweep_fused_identical: sweep_ok,
            peel_fused_identical: peel_ok,
            decompress_roundtrip_identical: roundtrip_ok,
            binio_v2_roundtrip_identical: binio_ok,
            spill_build_identical: spill_ok,
            pool_sizes,
        },
    }
}

#[derive(Serialize)]
struct IterativeParity {
    /// Greedy++ density / vertex set / dual bound / round count identical
    /// on plain and compressed storage at every pool size tried.
    greedypp_identical: bool,
    /// Same for FISTA.
    fista_identical: bool,
    /// Pool sizes the iterative parity checks ran at.
    pool_sizes: Vec<usize>,
}

/// Rounds until the certified gap `density·(1+ε) ≥ dual bound` closes.
#[derive(Serialize)]
struct EpsilonPoint {
    epsilon: f64,
    /// `None` means the budget ran out before the gap closed.
    greedypp_rounds: Option<usize>,
    fista_rounds: Option<usize>,
}

/// The PR-7 iterative section: certified Greedy++/FISTA near-optimal
/// engine vs the exact oracle.
#[derive(Serialize)]
struct IterativeSection {
    timings: Vec<Timing>,
    /// Iterations-to-ε read off the dual-gap trajectory of an
    /// uncapped budget run.
    iterations_to_epsilon: Vec<EpsilonPoint>,
    /// `uds_exact_certified_best / greedypp_certify_exact_best` — the PR-7
    /// acceptance headline (target > 1: near-optimal incumbent + 1-2 flow
    /// probes vs the oracle's full guess ladder).
    speedup_greedypp_vs_exact: f64,
    /// FISTA counterpart of the headline.
    speedup_fista_vs_exact: f64,
    greedypp_density: f64,
    fista_density: f64,
    exact_density: f64,
    /// Both `--certify exact` runs landed exactly on the oracle density.
    reached_exact: bool,
    parity: IterativeParity,
}

/// Times and parity-checks the PR-7 iterative near-optimal engine:
/// exact-certified Greedy++/FISTA vs the full `uds_exact_certified`
/// oracle on the seeded power-law benchmark, iterations-to-ε off the
/// dual-gap trajectory, and plain/compressed bit-parity at pool sizes
/// {1, 2, 4}. Density agreement and parity are asserted; the speedup
/// headline is asserted only in full (non-smoke) runs, where timing
/// noise cannot dominate.
fn iterative_section(scale: f64, reps: usize, smoke: bool) -> IterativeSection {
    use dsd_core::uds::iterate::{
        fista_storage, greedy_pp_storage, CertifyMode, IterateConfig, IterativeResult, RoundPoint,
    };
    use dsd_graph::{CompressedCsr, UndirectedStorage};
    fn one<T>(_: &T) -> usize {
        1
    }

    // The satellite generator: seeded configuration-model power law with a
    // configurable exponent — the iterative engine's benchmark substrate.
    let n = ((800.0 * scale) as usize).max(60);
    let g = dsd_graph::gen::power_law_configuration(n, n * 5, 2.5, 11);
    let plain = UndirectedStorage::Plain(&g);
    let certify_cfg = IterateConfig { iterations: 200, epsilon: 0.01, certify: CertifyMode::Exact };
    let rounds_of = |r: &IterativeResult| r.rounds;

    let exact_t = timing("uds_exact_certified_baseline", reps, one, || {
        dsd_core::uds::exact::uds_exact_certified(&g)
    });
    let gpp_t = timing("greedypp_certify_exact", reps, rounds_of, || {
        greedy_pp_storage(&plain, &certify_cfg)
    });
    let fista_t =
        timing("fista_certify_exact", reps, rounds_of, || fista_storage(&plain, &certify_cfg));

    let exact = dsd_core::uds::exact::uds_exact_certified(&g);
    let gpp = greedy_pp_storage(&plain, &certify_cfg);
    let fst = fista_storage(&plain, &certify_cfg);
    let reached = (gpp.result.density - exact.density).abs() < 1e-9
        && (fst.result.density - exact.density).abs() < 1e-9;
    assert!(
        reached,
        "iterative: certified runs missed the optimum (greedypp {}, fista {}, exact {})",
        gpp.result.density, fst.result.density, exact.density
    );

    // Iterations-to-ε off an uncapped dual-gap trajectory (no early stop).
    let budget = if smoke { 40 } else { 400 };
    let free_cfg = IterateConfig { iterations: budget, epsilon: 0.0, certify: CertifyMode::None };
    let gpp_hist = greedy_pp_storage(&plain, &free_cfg).history;
    let fst_hist = fista_storage(&plain, &free_cfg).history;
    let to_eps = |hist: &[RoundPoint], eps: f64| {
        hist.iter().position(|p| p.density * (1.0 + eps) >= p.upper_bound).map(|i| i + 1)
    };
    let iterations_to_epsilon = [0.1, 0.01, 0.001]
        .iter()
        .map(|&epsilon| EpsilonPoint {
            epsilon,
            greedypp_rounds: to_eps(&gpp_hist, epsilon),
            fista_rounds: to_eps(&fst_hist, epsilon),
        })
        .collect();

    // Parity: both engines bit-identical on plain and compressed storage
    // at every pool size.
    let c = CompressedCsr::from_graph(&g);
    let parity_cfg = IterateConfig { iterations: 10, epsilon: 0.01, certify: CertifyMode::Dual };
    let same = |a: &IterativeResult, b: &IterativeResult| {
        a.result.density == b.result.density
            && a.result.vertices == b.result.vertices
            && a.upper_bound == b.upper_bound
            && a.rounds == b.rounds
    };
    let gpp_ref = greedy_pp_storage(&plain, &parity_cfg);
    let fst_ref = fista_storage(&plain, &parity_cfg);
    let pool_sizes = vec![1usize, 2, 4];
    let mut gpp_ok = true;
    let mut fst_ok = true;
    for &p in &pool_sizes {
        let (gp, gc, fp, fc) = with_threads(p, || {
            let packed = UndirectedStorage::Compressed(&c);
            (
                greedy_pp_storage(&plain, &parity_cfg),
                greedy_pp_storage(&packed, &parity_cfg),
                fista_storage(&plain, &parity_cfg),
                fista_storage(&packed, &parity_cfg),
            )
        });
        gpp_ok &= same(&gp, &gpp_ref) && same(&gc, &gpp_ref);
        fst_ok &= same(&fp, &fst_ref) && same(&fc, &fst_ref);
    }
    assert!(gpp_ok, "iterative parity: greedypp diverged across storage/pool");
    assert!(fst_ok, "iterative parity: fista diverged across storage/pool");

    let speedup_g = exact_t.best_secs / gpp_t.best_secs.max(1e-12);
    let speedup_f = exact_t.best_secs / fista_t.best_secs.max(1e-12);
    assert!(
        smoke || speedup_g > 1.0 || speedup_f > 1.0,
        "iterative: certified engine slower than the exact oracle \
         (greedypp {speedup_g:.2}x, fista {speedup_f:.2}x)"
    );

    IterativeSection {
        speedup_greedypp_vs_exact: speedup_g,
        speedup_fista_vs_exact: speedup_f,
        greedypp_density: gpp.result.density,
        fista_density: fst.result.density,
        exact_density: exact.density,
        reached_exact: reached,
        timings: vec![exact_t, gpp_t, fista_t],
        iterations_to_epsilon,
        parity: IterativeParity { greedypp_identical: gpp_ok, fista_identical: fst_ok, pool_sizes },
    }
}

#[derive(Serialize)]
struct ObservabilityParity {
    /// Round-shape histograms (`round/*`, unit `count`) bit-identical —
    /// same keys, counts, sums, and bucket vectors — across every pool
    /// size tried, on the deterministic sweep engine.
    round_histograms_pool_invariant: bool,
    /// Pool sizes the histogram parity ran at.
    pool_sizes: Vec<usize>,
}

/// The PR-8 observability section: the flight recorder's measured
/// disabled-path cost and the recorder-off overhead disclosure required
/// by the < 2% contract.
#[derive(Serialize)]
struct ObservabilitySection {
    /// Measured per-call cost of a disabled `span()` probe (one relaxed
    /// atomic load plus an inert guard drop), in nanoseconds.
    probe_disabled_ns: f64,
    /// Probe events one traced sweep run records (span nodes + flat
    /// phase/histogram samples + round samples) — the probe count the
    /// overhead estimate multiplies.
    probes_per_traced_run: u64,
    /// Estimated recorder-off overhead of the sweep engine run:
    /// `probes_per_traced_run * probe_disabled_ns / recorder_off_wall`,
    /// as a percentage. The contract (DESIGN.md §7) requires < 2.
    recorder_off_overhead_pct: f64,
    /// Best-of recorder-on wall (including `begin_trace`/`end_trace`)
    /// over best-of recorder-off wall for the same sweep decomposition —
    /// the full-recorder cost, NOT bounded by the 2% contract.
    ratio_recorder_on_vs_off: f64,
    timings: Vec<Timing>,
    parity: ObservabilityParity,
}

/// Measures the flight recorder's costs (PR 8): the disabled-probe
/// nanosecond microbench behind the < 2% recorder-off contract, the
/// recorder-on/off wall ratio on the sweep engine, and the pool-size
/// invariance of the deterministic round-shape histograms. The overhead
/// estimate and the histogram parity are asserted (overhead in full runs
/// only, where the workload is large enough to dominate timer noise).
fn observability_section(g: &UndirectedGraph, reps: usize, smoke: bool) -> ObservabilitySection {
    use dsd_telemetry as tel;
    use tel::Phase;
    fn one<T>(_: &T) -> usize {
        1
    }

    // --- Disabled-probe microbench: recorder off, tight span() loop. ---
    tel::set_enabled(false);
    let probe_calls: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..probe_calls {
        std::hint::black_box(tel::span(Phase::Sweep));
    }
    let probe_disabled_ns = t0.elapsed().as_nanos() as f64 / probe_calls as f64;

    // --- Recorder off vs on on the same sweep decomposition. ---
    let off = timing("sweep_engine_recorder_off", reps, one, || {
        local_decomposition_in(g, &mut SweepWorkspace::new())
    });
    let on = timing("sweep_engine_recorder_on", reps, one, || {
        tel::set_enabled(true);
        tel::begin_trace("observability/recorder_on");
        let r = local_decomposition_in(g, &mut SweepWorkspace::new());
        let _ = tel::end_trace();
        tel::set_enabled(false);
        r
    });
    let ratio_on_off = on.best_secs / off.best_secs.max(1e-12);

    // --- Probe count of one traced run, for the overhead estimate. ---
    tel::set_enabled(true);
    tel::begin_trace("observability/probe_count");
    local_decomposition_in(g, &mut SweepWorkspace::new());
    let probe_trace = tel::end_trace().expect("recorder is enabled");
    tel::set_enabled(false);
    let probes: u64 = probe_trace.spans.len() as u64
        + probe_trace.histograms.iter().map(|h| h.hist.count()).sum::<u64>()
        + probe_trace.rounds.len() as u64;
    let overhead_pct = probes as f64 * probe_disabled_ns / (off.best_secs.max(1e-12) * 1e9) * 100.0;
    assert!(
        smoke || overhead_pct < 2.0,
        "observability: estimated recorder-off overhead {overhead_pct:.3}% breaks the 2% contract \
         ({probes} probes at {probe_disabled_ns:.1}ns over {:.3}s)",
        off.best_secs
    );

    // --- Round-shape histogram pool invariance (the acceptance datum):
    // the `round/*` count histograms must be bit-identical at pools
    // {1, 2, 4} on the deterministic sweep engine. ---
    let pool_sizes = vec![1usize, 2, 4];
    let mut shapes: Vec<Vec<(&'static str, tel::hist::LogHistogram)>> = Vec::new();
    for &p in &pool_sizes {
        tel::set_enabled(true);
        tel::begin_trace("observability/hist_parity");
        with_threads(p, || local_decomposition_in(g, &mut SweepWorkspace::new()));
        let t = tel::end_trace().expect("recorder is enabled");
        tel::set_enabled(false);
        shapes.push(
            t.histograms
                .iter()
                .filter(|h| h.unit == "count")
                .map(|h| (h.key, h.hist.clone()))
                .collect(),
        );
    }
    let hist_ok = !shapes[0].is_empty() && shapes.windows(2).all(|w| w[0] == w[1]);
    assert!(
        hist_ok,
        "observability: round-shape histograms diverged across pool sizes on the sweep engine"
    );

    ObservabilitySection {
        probe_disabled_ns,
        probes_per_traced_run: probes,
        recorder_off_overhead_pct: overhead_pct,
        ratio_recorder_on_vs_off: ratio_on_off,
        timings: vec![off, on],
        parity: ObservabilityParity { round_histograms_pool_invariant: hist_ok, pool_sizes },
    }
}

/// Layered flow network for the raw solver timings (`s = n-2`, `t = n-1`):
/// `layers x width` grid with two forward arcs per node.
fn layered_network(layers: usize, width: usize) -> (usize, Vec<(usize, usize, u64)>) {
    let n = layers * width + 2;
    let (s, t) = (n - 2, n - 1);
    let mut arcs = Vec::new();
    for w in 0..width {
        arcs.push((s, w, 3u64));
        arcs.push(((layers - 1) * width + w, t, 3));
    }
    for l in 0..layers - 1 {
        for w in 0..width {
            arcs.push((l * width + w, (l + 1) * width + (w + 7) % width, 2));
            arcs.push((l * width + w, (l + 1) * width + (w + 3) % width, 2));
        }
    }
    (n, arcs)
}

/// Times and parity-checks the PR-5 exact-flow engine against the Dinic
/// legacy oracles. Every parity flag is asserted, so a divergence aborts
/// the run (and the CI smoke job) rather than just flagging JSON.
fn flow_section(scale: f64, reps: usize) -> FlowSection {
    use dsd_flow::{Dinic, PushRelabel};
    fn one<T>(_: &T) -> usize {
        1
    }

    // Raw solver ablation on the layered network.
    let layers = ((30.0 * scale.sqrt()) as usize).clamp(6, 120);
    let width = ((20.0 * scale.sqrt()) as usize).clamp(4, 80);
    let (net_n, arcs) = layered_network(layers, width);
    let (s, t) = (net_n - 2, net_n - 1);
    let dinic_raw = timing("dinic_layered_raw", reps, one, || {
        let mut d = Dinic::new(net_n);
        for &(u, v, cap) in &arcs {
            d.add_edge(u, v, cap as f64);
        }
        d.max_flow(s, t)
    });
    let pr_raw = timing("push_relabel_layered_raw", reps, one, || {
        let mut pr = PushRelabel::new(net_n);
        for &(u, v, cap) in &arcs {
            pr.add_edge(u, v, cap);
        }
        pr.max_flow(s, t)
    });

    // Exact oracles end to end: engine (certified = approximation-seeded,
    // core-pruned push-relabel) vs the float/Dinic legacy binary search.
    let un = ((800.0 * scale) as usize).max(40);
    let um = un * 5;
    let ug = dsd_graph::gen::erdos_renyi(un, um, 7);
    let dn = ((26.0 * scale) as usize).clamp(10, 40);
    let dm = dn * 4;
    let dg = dsd_graph::gen::erdos_renyi_directed(dn, dm, 8);
    let uds_legacy =
        timing("uds_exact_legacy_dinic", reps, one, || dsd_flow::uds_exact_legacy(&ug));
    let uds_engine = timing("uds_exact_engine_certified", reps, one, || {
        dsd_core::uds::exact::uds_exact_certified(&ug)
    });
    let dds_legacy =
        timing("dds_exact_legacy_dinic", reps, one, || dsd_flow::dds_exact_legacy(&dg));
    let dds_engine = timing("dds_exact_engine_certified", reps, one, || {
        dsd_core::dds::exact::dds_exact_certified(&dg)
    });

    // Parity: raw flow values + cut duality on several pseudorandom
    // networks, oracle agreement on the benchmark graphs, and exact-density
    // pool invariance.
    let mut raw_ok = true;
    let mut cut_ok = true;
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for trial in 0..6 {
        let n = 10 + trial * 3;
        let mut pr = PushRelabel::new(n);
        let mut d = Dinic::new(n);
        let mut net = Vec::new();
        for _ in 0..n * 4 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 16) as usize % n;
            let v = (state >> 40) as usize % n;
            let cap = (state >> 56) % 31 + 1;
            if u != v {
                pr.add_edge(u, v, cap);
                d.add_edge(u, v, cap as f64);
                net.push((u, v, cap));
            }
        }
        let flow = pr.max_flow(0, n - 1);
        raw_ok &= flow as f64 == d.max_flow(0, n - 1);
        let side = pr.min_cut_source_side(0, n - 1);
        let cut: u64 =
            net.iter().filter(|&&(u, v, _)| side[u] && !side[v]).map(|&(_, _, c)| c).sum();
        cut_ok &= flow == cut;
    }
    let uds_ref = dsd_flow::uds_exact_legacy(&ug);
    let dds_ref = dsd_flow::dds_exact_legacy(&dg);
    let pool_sizes = vec![1usize, 2, 4];
    let mut uds_ok = true;
    let mut dds_ok = true;
    let mut uds_pool = Vec::new();
    let mut dds_pool = Vec::new();
    for &p in &pool_sizes {
        let (ur, dr) = with_threads(p, || {
            (
                dsd_core::uds::exact::uds_exact_certified(&ug),
                dsd_core::dds::exact::dds_exact_certified(&dg),
            )
        });
        uds_ok &= (ur.density - uds_ref.density).abs() < 1e-9;
        dds_ok &= (dr.density - dds_ref.density).abs() < 1e-6;
        uds_pool.push(ur.density);
        dds_pool.push(dr.density);
    }
    let uds_pool_ok = uds_pool.windows(2).all(|w| w[0] == w[1]);
    let dds_pool_ok = dds_pool.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9);
    assert!(raw_ok, "flow parity: push-relabel value diverged from Dinic");
    assert!(cut_ok, "flow parity: extracted min-cut capacity != max-flow value");
    assert!(uds_ok, "flow parity: engine uds_exact diverged from the legacy oracle");
    assert!(dds_ok, "flow parity: engine dds_exact diverged from the legacy oracle");
    assert!(uds_pool_ok, "flow parity: uds exact density varies across pool sizes");
    assert!(dds_pool_ok, "flow parity: dds exact density varies across pool sizes");

    FlowSection {
        speedup_uds_exact_vs_legacy: uds_legacy.best_secs / uds_engine.best_secs.max(1e-12),
        speedup_dds_exact_vs_legacy: dds_legacy.best_secs / dds_engine.best_secs.max(1e-12),
        speedup_push_relabel_vs_dinic: dinic_raw.best_secs / pr_raw.best_secs.max(1e-12),
        timings: vec![dinic_raw, pr_raw, uds_legacy, uds_engine, dds_legacy, dds_engine],
        parity: FlowParity {
            raw_flow_identical: raw_ok,
            cut_capacity_identical: cut_ok,
            uds_exact_identical: uds_ok,
            dds_exact_identical: dds_ok,
            uds_pool_invariant: uds_pool_ok,
            dds_pool_invariant: dds_pool_ok,
            pool_sizes,
        },
    }
}

/// One batch-size measurement of the incremental engine: the timed
/// `apply_batch` vs the from-scratch decomposition of the updated graph.
#[derive(Serialize)]
struct DynamicPoint {
    graph: &'static str,
    directed: bool,
    /// Requested batch size (`inserts`/`removes` record what the churn
    /// sampler actually found room for on small smoke graphs).
    batch: usize,
    inserts: usize,
    removes: usize,
    update_best_secs: f64,
    scratch_best_secs: f64,
    /// `scratch_best / update_best` for this point.
    speedup: f64,
    /// Maintenance frontier of the update: seeded vertices (undirected)
    /// or re-peeled edges (directed).
    frontier: usize,
}

#[derive(Serialize)]
struct DynamicParity {
    /// Batched core vectors bit-identical to from-scratch recomputation
    /// at every pool size tried, on both undirected benchmarks.
    undirected_identical_across_pools: bool,
    /// Batched induce-numbers and `w*` bit-identical to from-scratch at
    /// every pool size tried, on both directed benchmarks.
    directed_identical_across_pools: bool,
    pool_sizes: Vec<usize>,
}

/// The PR-9 dynamic section: frontier-bounded batch updates vs
/// from-scratch recomputation across batch sizes.
#[derive(Serialize)]
struct DynamicSection {
    batch_sizes: Vec<usize>,
    points: Vec<DynamicPoint>,
    /// `scratch_best / update_best` at batch=10 on the undirected
    /// filament graph — the PR-9 acceptance headline (target >= 3).
    speedup_batch10_filament: f64,
    parity: DynamicParity,
}

/// Deterministic churn batch for the dynamic benchmarks: `size` removes
/// sampled from existing edges plus `size` inserts sampled from absent
/// pairs (both capped by what the graph has room for). `directed` keeps
/// arc orientation; undirected pairs are canonical `u < v`.
fn churn_batch(
    edges: &[(VertexId, VertexId)],
    n: usize,
    has_edge: impl Fn(VertexId, VertexId) -> bool,
    directed: bool,
    size: usize,
    seed: u64,
) -> DeltaBatch {
    let mut x = seed | 1;
    let mut next = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 11
    };
    let mut removes = Vec::new();
    if !edges.is_empty() {
        // Cap removals at a quarter of the graph so the biggest batches
        // still leave a recognisable benchmark behind.
        let want = size.min(edges.len() / 4).max(1);
        let mut i = next() as usize % edges.len();
        let mut steps = 0;
        while removes.len() < want && steps < 4 * edges.len() + size {
            steps += 1;
            let e = edges[i % edges.len()];
            if !removes.contains(&e) {
                removes.push(e);
            }
            i += 1;
        }
    }
    let mut inserts = Vec::new();
    let mut tries = 0;
    while inserts.len() < size && tries < 50 * size + 200 {
        tries += 1;
        let u = (next() % n as u64) as VertexId;
        let v = (next() % n as u64) as VertexId;
        let (a, b) = if directed || u < v { (u, v) } else { (v, u) };
        if a == b || has_edge(a, b) || inserts.contains(&(a, b)) {
            continue;
        }
        inserts.push((a, b));
    }
    DeltaBatch::new(inserts, removes).expect("churn batch is non-empty and valid")
}

/// Times and parity-checks the PR-9 incremental engine: `apply_batch`
/// latency (state pre-built, each rep restored by applying the inverse
/// batch untimed) against the from-scratch decomposition of the updated
/// graph, across batch sizes, on the filament and plain power-law
/// benchmarks in both orientations. Parity (batched == scratch at pool
/// sizes 1/2/4) is asserted, so a divergence aborts the run.
fn dynamic_section(
    g: &UndirectedGraph,
    power: &UndirectedGraph,
    d: &DirectedGraph,
    df: &DirectedGraph,
    reps: usize,
) -> DynamicSection {
    let batch_sizes = vec![1usize, 10, 100, 1000];
    let mut points = Vec::new();
    let mut headline = 0.0f64;

    for (name, base) in [("filament_chung_lu", g), ("power_law_chung_lu", power)] {
        let edges: Vec<_> = base.edges().collect();
        let mut state = DynamicUndirectedState::new(base.clone());
        for &b in &batch_sizes {
            let batch = churn_batch(
                &edges,
                base.num_vertices(),
                |u, v| base.has_edge(u, v),
                false,
                b,
                0x9e37 ^ b as u64,
            );
            let inverse =
                DeltaBatch::new(batch.removes().to_vec(), batch.inserts().to_vec()).unwrap();
            let mut update_best = f64::MAX;
            let mut frontier = 0;
            for _ in 0..reps {
                let t0 = Instant::now();
                let out = state.apply_batch(&batch).expect("churn batch applies");
                update_best = update_best.min(t0.elapsed().as_secs_f64());
                frontier = out.frontier_size;
                state.apply_batch(&inverse).expect("inverse batch applies");
            }
            let updated = apply_undirected(base, &batch).unwrap();
            let (scratch_best, _, _) = time_reps(reps, || scratch_undirected(&updated));
            let speedup = scratch_best.as_secs_f64() / update_best.max(1e-12);
            if name == "filament_chung_lu" && b == 10 {
                headline = speedup;
            }
            points.push(DynamicPoint {
                graph: name,
                directed: false,
                batch: b,
                inserts: batch.inserts().len(),
                removes: batch.removes().len(),
                update_best_secs: update_best,
                scratch_best_secs: scratch_best.as_secs_f64(),
                speedup,
                frontier,
            });
        }
    }

    for (name, base) in [("directed_chung_lu", d), ("directed_filament_chung_lu", df)] {
        let edges: Vec<_> = base.edges().collect();
        let mut state = DynamicDirectedState::new(base.clone());
        for &b in &batch_sizes {
            let batch = churn_batch(
                &edges,
                base.num_vertices(),
                |u, v| base.has_edge(u, v),
                true,
                b,
                0x7f4a ^ b as u64,
            );
            let inverse =
                DeltaBatch::new(batch.removes().to_vec(), batch.inserts().to_vec()).unwrap();
            let mut update_best = f64::MAX;
            let mut frontier = 0;
            for _ in 0..reps {
                let t0 = Instant::now();
                let out = state.apply_batch(&batch).expect("churn batch applies");
                update_best = update_best.min(t0.elapsed().as_secs_f64());
                frontier = out.frontier_size;
                state.apply_batch(&inverse).expect("inverse batch applies");
            }
            let updated = apply_directed(base, &batch).unwrap();
            let (scratch_best, _, _) = time_reps(reps, || scratch_directed(&updated));
            points.push(DynamicPoint {
                graph: name,
                directed: true,
                batch: b,
                inserts: batch.inserts().len(),
                removes: batch.removes().len(),
                update_best_secs: update_best,
                scratch_best_secs: scratch_best.as_secs_f64(),
                speedup: scratch_best.as_secs_f64() / update_best.max(1e-12),
                frontier,
            });
        }
    }

    // --- Parity: batched result bit-identical to scratch at every pool
    // size, batch=10 churn on all four benchmarks. ---
    let pool_sizes = vec![1usize, 2, 4];
    let mut undirected_ok = true;
    let mut directed_ok = true;
    for base in [g, power] {
        let edges: Vec<_> = base.edges().collect();
        let batch =
            churn_batch(&edges, base.num_vertices(), |u, v| base.has_edge(u, v), false, 10, 0x51);
        let oracle = scratch_undirected(&apply_undirected(base, &batch).unwrap());
        for &p in &pool_sizes {
            let core = with_threads(p, || {
                let mut st = DynamicUndirectedState::new(base.clone());
                st.apply_batch(&batch).expect("parity batch applies");
                st.core_numbers().to_vec()
            });
            undirected_ok &= core == oracle;
        }
    }
    for base in [d, df] {
        let edges: Vec<_> = base.edges().collect();
        let batch =
            churn_batch(&edges, base.num_vertices(), |u, v| base.has_edge(u, v), true, 10, 0x52);
        let oracle = scratch_directed(&apply_directed(base, &batch).unwrap());
        for &p in &pool_sizes {
            let (induce, w_star) = with_threads(p, || {
                let mut st = DynamicDirectedState::new(base.clone());
                st.apply_batch(&batch).expect("parity batch applies");
                (st.induce_numbers().to_vec(), st.w_star())
            });
            directed_ok &= induce == oracle.induce_number && w_star == oracle.w_star;
        }
    }
    assert!(undirected_ok, "dynamic parity: batched core vector diverged from scratch");
    assert!(directed_ok, "dynamic parity: batched induce-numbers diverged from scratch");

    DynamicSection {
        batch_sizes,
        points,
        speedup_batch10_filament: headline,
        parity: DynamicParity {
            undirected_identical_across_pools: undirected_ok,
            directed_identical_across_pools: directed_ok,
            pool_sizes,
        },
    }
}

/// Query-latency percentiles for one serve query kind, measured
/// client-side over a loopback TCP round trip (frame encode + dispatch +
/// snapshot read + frame decode).
#[derive(Serialize)]
struct ServingLatency {
    kind: &'static str,
    queries: usize,
    p50_secs: f64,
    p90_secs: f64,
    p99_secs: f64,
}

/// The PR-10 serving section: `dsd serve` query latency against the
/// precomputed snapshot, and what a snapshot install costs the readers.
#[derive(Serialize)]
struct ServingSection {
    latency: Vec<ServingLatency>,
    /// Best-of round trip for an `update` op: delta apply + certificate
    /// rebuild + snapshot install, end to end.
    update_roundtrip_best_secs: f64,
    /// Worst densest-query latency observed by a reader running
    /// *concurrently* with the snapshot installs — the reader-visible
    /// install stall. Epoch reclamation means readers never block on the
    /// writer, so this should stay within the same order of magnitude as
    /// the idle p99 rather than absorbing the rebuild cost.
    install_stall_max_query_secs: f64,
    /// One-shot `pkmc` wall / best cached densest round trip — the PR-10
    /// headline: what precomputing the certificate at load time buys every
    /// subsequent query.
    speedup_cached_vs_oneshot: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times the serving layer end to end over loopback TCP: per-kind query
/// percentiles on an idle daemon, update round trips, and the
/// reader-observed stall while installs happen concurrently.
fn serving_section(g: &UndirectedGraph, reps: usize, smoke: bool) -> ServingSection {
    use dsd_serve::protocol::{read_frame, write_frame};
    use dsd_serve::{ServeConfig, Server};
    use std::net::TcpStream;

    let server = Server::start_tcp(
        dsd_core::dynamic::DynamicState::new_undirected(g.clone()),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("serving bench binds loopback");
    let addr = server.local_addr().expect("tcp server has an address");
    let query = |stream: &mut TcpStream, payload: &str| -> f64 {
        let t0 = Instant::now();
        write_frame(stream, payload).expect("serving bench send");
        let frame = read_frame(stream)
            .expect("serving bench read")
            .expect("serving bench connection open")
            .expect("serving bench well-formed frame");
        let wall = t0.elapsed().as_secs_f64();
        assert!(frame.contains("\"ok\":true"), "serving bench query failed: {frame}");
        wall
    };

    // --- Idle per-kind latency percentiles (one keep-alive connection,
    // sequential queries, client-side wall). ---
    let n = g.num_vertices();
    let probe: Vec<String> = (0..8).map(|i| (i * n.max(8) / 8).to_string()).collect();
    let kinds: Vec<(&'static str, String)> = vec![
        ("densest", "{\"op\":\"densest\"}".to_string()),
        ("density", format!("{{\"op\":\"density\",\"vertices\":[{}]}}", probe.join(","))),
        ("core", format!("{{\"op\":\"core\",\"vertices\":[{}]}}", probe.join(","))),
        ("neighborhood", "{\"op\":\"neighborhood\",\"seed\":0,\"k\":3}".to_string()),
        ("greedypp", "{\"op\":\"greedypp\",\"iterations\":4,\"epsilon\":0.05}".to_string()),
    ];
    let queries = if smoke { 40 } else { 300 };
    let mut stream = TcpStream::connect(addr).expect("serving bench connects");
    stream.set_nodelay(true).expect("serving bench nodelay");
    let mut latency = Vec::new();
    for (kind, payload) in &kinds {
        let mut samples: Vec<f64> = (0..queries).map(|_| query(&mut stream, payload)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
        latency.push(ServingLatency {
            kind,
            queries,
            p50_secs: percentile(&samples, 0.50),
            p90_secs: percentile(&samples, 0.90),
            p99_secs: percentile(&samples, 0.99),
        });
    }
    let densest_best =
        latency.iter().find(|l| l.kind == "densest").expect("densest kind measured").p50_secs;

    // --- Snapshot installs under concurrent reads: a reader hammers
    // densest queries while the writer applies churn batches; its worst
    // observed latency is the reader-visible install stall. ---
    let edges: Vec<_> = g.edges().collect();
    let installs = if smoke { 4 } else { 8 };
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("stall reader connects");
            stream.set_nodelay(true).expect("stall reader nodelay");
            let mut worst = 0.0f64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let t0 = Instant::now();
                write_frame(&mut stream, "{\"op\":\"densest\"}").expect("stall reader send");
                read_frame(&mut stream)
                    .expect("stall reader read")
                    .expect("stall reader connection open")
                    .expect("stall reader well-formed frame");
                worst = worst.max(t0.elapsed().as_secs_f64());
            }
            worst
        })
    };
    let mut update_best = f64::MAX;
    for i in 0..installs {
        let batch = churn_batch(
            &edges,
            g.num_vertices(),
            |u, v| g.has_edge(u, v),
            false,
            10,
            0xbeef ^ i as u64,
        );
        let inverse = DeltaBatch::new(batch.removes().to_vec(), batch.inserts().to_vec())
            .expect("inverse churn batch is valid");
        for batch in [&batch, &inverse] {
            let fmt = |pairs: &[(VertexId, VertexId)]| {
                pairs.iter().map(|(u, v)| format!("[{u},{v}]")).collect::<Vec<_>>().join(",")
            };
            let payload = format!(
                "{{\"op\":\"update\",\"insert\":[{}],\"remove\":[{}]}}",
                fmt(batch.inserts()),
                fmt(batch.removes())
            );
            update_best = update_best.min(query(&mut stream, &payload));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let install_stall = reader.join().expect("stall reader finishes");

    // --- Headline: the certificate is precomputed once per install, so a
    // cached densest query costs a frame round trip, not a decomposition.
    // (The inverse batches above returned the daemon to the base graph,
    // so both sides answer for the same instance.) ---
    let (oneshot_best, _, _) = time_reps(reps, || {
        let r: dsd_core::uds::UdsResult =
            pkmc_in(g, PkmcConfig::new(), &mut SweepWorkspace::new()).into();
        r
    });
    let speedup = oneshot_best.as_secs_f64() / densest_best.max(1e-12);

    drop(stream);
    server.shutdown();
    server.join();
    ServingSection {
        latency,
        update_roundtrip_best_secs: update_best,
        install_stall_max_query_secs: install_stall,
        speedup_cached_vs_oneshot: speedup,
    }
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    pr: u32,
    graphs: Vec<GraphMeta>,
    /// Sweep-engine micro-comparison on the filament-tailed graph.
    sweep_engine: Vec<Timing>,
    /// `legacy_best / engine_sync_best` — the PR-1 acceptance headline.
    speedup_engine_vs_legacy: f64,
    parity: Parity,
    /// DDS peeling-engine comparison (PR 2).
    dds: DdsSection,
    /// Graph-ingest engine comparison (PR 4).
    ingest: IngestSection,
    /// Exact-flow engine comparison (PR 5).
    flow: FlowSection,
    /// Compressed substrate figures (PR 6).
    compression: CompressionSection,
    /// Iterative near-optimal engine figures (PR 7).
    iterative: IterativeSection,
    /// Flight-recorder cost disclosure (PR 8).
    observability: ObservabilitySection,
    /// Incremental decomposition engine figures (PR 9).
    dynamic: DynamicSection,
    /// Snapshot-isolated query daemon figures (PR 10).
    serving: ServingSection,
    /// End-to-end contributed algorithms.
    end_to_end: Vec<Timing>,
    /// Per-round decomposition traces (`--trace` only): a
    /// `dsd-telemetry-section/v1` object whose `traces` array holds one
    /// `dsd-trace/v2` document per traced run (span trees truncated to
    /// the first 256 nodes to keep the committed report small).
    #[serde(skip_serializing_if = "Option::is_none")]
    telemetry: Option<serde_json::Value>,
    threads: usize,
    notes: String,
}

fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, Duration, T) {
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let wall = start.elapsed();
        best = best.min(wall);
        total += wall;
        last = Some(out);
    }
    (best, total / reps as u32, last.expect("reps >= 1"))
}

fn timing<T>(
    name: &'static str,
    reps: usize,
    iterations_of: impl Fn(&T) -> usize,
    f: impl FnMut() -> T,
) -> Timing {
    let (best, mean, last) = time_reps(reps, f);
    Timing {
        name,
        best_secs: best.as_secs_f64(),
        mean_secs: mean.as_secs_f64(),
        reps,
        iterations: iterations_of(&last),
    }
}

/// The Table-6 regime stand-in: a power-law body with long filament tails,
/// so Local-style full resweeps pay `O(m)` per sweep for hundreds of
/// sweeps.
fn filament_graph(scale: f64) -> UndirectedGraph {
    let n = (12_000.0 * scale) as usize;
    let m = (72_000.0 * scale) as usize;
    let base = dsd_graph::gen::chung_lu(n.max(100), m.max(500), 2.3, 42);
    let len = (600.0 * scale.sqrt()) as usize;
    dsd_graph::gen::attach_filaments(&base, 4, len.max(20), 43)
}

/// Plain power-law benchmark (same body shape as [`filament_graph`] but
/// without the appended tails) for the dynamic-engine comparison: churn
/// on the heavy-tailed core without filament artifacts.
fn power_law_graph(scale: f64) -> UndirectedGraph {
    let n = (12_000.0 * scale) as usize;
    let m = (72_000.0 * scale) as usize;
    dsd_graph::gen::chung_lu(n.max(100), m.max(500), 2.3, 47)
}

/// Million-edge synthetic raw multiset for the ingest timings: LCG-driven
/// endpoints over `n = m/5` vertices, so duplicates and the occasional
/// self-loop occur naturally (the shape real edge-list files have). Kept
/// deliberately independent of the graph generators — the builders under
/// test are exactly what the generators themselves use.
fn raw_edge_multiset(scale: f64) -> (usize, Vec<(u32, u32)>) {
    let m = ((1_000_000.0 * scale) as usize).max(2_000);
    // Average degree ~64, matching the paper's headline graphs (TW ~70,
    // FT ~63) rather than a near-bipartite-sparse shape.
    let n = (m / 32).max(400);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((state >> 16) as usize % n) as u32;
        let v = ((state >> 40) as usize % n) as u32;
        edges.push((u, v));
    }
    (n, edges)
}

/// Renders the raw multiset as a text edge list (with comment lines mixed
/// in, as KONECT/SNAP files have) for the parser timings.
fn edge_text(edges: &[(u32, u32)]) -> Vec<u8> {
    use std::io::Write;
    let mut out = Vec::with_capacity(edges.len() * 14 + 64);
    writeln!(out, "% synthetic ingest benchmark").expect("vec write");
    for (i, &(u, v)) in edges.iter().enumerate() {
        if i % 10_000 == 0 {
            writeln!(out, "# block {}", i / 10_000).expect("vec write");
        }
        writeln!(out, "{u} {v}").expect("vec write");
    }
    out
}

/// Times and parity-checks the PR-4 ingest engine against its legacy
/// oracles. Every parity flag is also asserted here, so a divergence
/// fails the binary (and the CI smoke run) rather than just flagging JSON.
fn ingest_section(scale: f64, reps: usize) -> IngestSection {
    use dsd_graph::{DirectedGraphBuilder, UndirectedGraphBuilder};

    let (n, edges) = raw_edge_multiset(scale);
    let text = edge_text(&edges);
    fn one<T>(_: &T) -> usize {
        1
    }

    let build_legacy = timing("build_undirected_legacy", reps, one, || {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap()
    });
    let build_engine = timing("build_undirected_engine", reps, one, || {
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    });
    let dbuild_legacy = timing("build_directed_legacy", reps, one, || {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap()
    });
    let dbuild_engine = timing("build_directed_engine", reps, one, || {
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
    });
    let parse_serial = timing("read_undirected_serial", reps, one, || {
        dsd_graph::io::read_undirected_serial(text.as_slice()).unwrap()
    });
    let parse_parallel = timing("read_undirected_parallel", reps, one, || {
        dsd_graph::io::read_undirected(text.as_slice()).unwrap()
    });
    let built = UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap();
    let reorder_legacy = timing("reorder_legacy_roundtrip", reps, one, || {
        dsd_graph::reorder::by_degree_descending_legacy(&built)
    });
    let reorder_engine = timing("reorder_engine_permute", reps, one, || {
        dsd_graph::reorder::by_degree_descending(&built)
    });

    let pool_sizes = vec![1usize, 2, 4];
    let u_reference =
        UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap();
    let d_reference =
        DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build_legacy().unwrap();
    let parse_reference = dsd_graph::io::read_undirected_serial(text.as_slice()).unwrap();
    let reorder_reference = dsd_graph::reorder::by_degree_descending_legacy(&built);
    let mut u_ok = true;
    let mut d_ok = true;
    let mut parse_ok = true;
    let mut reorder_ok = true;
    for &p in &pool_sizes {
        u_ok &= with_threads(p, || {
            UndirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
        }) == u_reference;
        d_ok &= with_threads(p, || {
            DirectedGraphBuilder::new(n).add_edges(edges.iter().copied()).build().unwrap()
        }) == d_reference;
        parse_ok &= with_threads(p, || dsd_graph::io::read_undirected(text.as_slice()).unwrap())
            == parse_reference;
        let r = with_threads(p, || dsd_graph::reorder::by_degree_descending(&built));
        reorder_ok &= r.graph == reorder_reference.graph
            && r.original == reorder_reference.original
            && r.new_id == reorder_reference.new_id;
    }
    assert!(u_ok, "ingest parity: undirected build() diverged from build_legacy()");
    assert!(d_ok, "ingest parity: directed build() diverged from build_legacy()");
    assert!(parse_ok, "ingest parity: parallel reader diverged from the serial reader");
    assert!(reorder_ok, "ingest parity: CSR reorder diverged from the legacy round-trip");

    IngestSection {
        raw_edges: edges.len(),
        raw_vertices: n,
        speedup_build_vs_legacy_undirected: build_legacy.best_secs
            / build_engine.best_secs.max(1e-12),
        speedup_build_vs_legacy_directed: dbuild_legacy.best_secs
            / dbuild_engine.best_secs.max(1e-12),
        speedup_parse_vs_serial: parse_serial.best_secs / parse_parallel.best_secs.max(1e-12),
        speedup_reorder_vs_legacy: reorder_legacy.best_secs / reorder_engine.best_secs.max(1e-12),
        timings: vec![
            build_legacy,
            build_engine,
            dbuild_legacy,
            dbuild_engine,
            parse_serial,
            parse_parallel,
            reorder_legacy,
            reorder_engine,
        ],
        parity: IngestParity {
            undirected_build_identical: u_ok,
            directed_build_identical: d_ok,
            parse_identical: parse_ok,
            reorder_identical: reorder_ok,
            pool_sizes,
        },
    }
}

/// Runs one traced UDS sweep decomposition and one traced DDS peel
/// decomposition and returns the `telemetry` report section. The recorder
/// is enabled only inside this function; traced runs go through
/// [`with_threads`] so each trace is labelled with its pool size.
fn collect_traces(
    g: &UndirectedGraph,
    d: &dsd_graph::DirectedGraph,
    threads: usize,
) -> serde_json::Value {
    use dsd_telemetry as tel;
    tel::set_enabled(true);

    tel::begin_trace("uds_local_engine_sync/filament_chung_lu");
    let uds = with_threads(threads, || local_decomposition_in(g, &mut SweepWorkspace::new()));
    let mut uds_trace = tel::end_trace().expect("recorder is enabled");

    tel::begin_trace("dds_w_star_engine/directed_chung_lu");
    let dds = with_threads(threads, || w_star_decomposition_in(d, &mut PeelWorkspace::new()));
    let mut dds_trace = tel::end_trace().expect("recorder is enabled");
    tel::set_enabled(false);

    // Keep the committed report small: truncate the embedded span trees
    // to their first 256 nodes (a prefix keeps parent links valid because
    // parents always precede children), accounting the rest as dropped.
    for t in [&mut uds_trace, &mut dds_trace] {
        const KEEP: usize = 256;
        if t.spans.len() > KEEP {
            t.spans_dropped += (t.spans.len() - KEEP) as u64;
            t.spans.truncate(KEEP);
        }
    }

    // Acceptance contract: the traces carry per-round samples, and the DDS
    // trace's final outer round saw exactly `Stats::edges_last_iter` alive
    // edges.
    assert!(
        !uds_trace.rounds.is_empty() && uds_trace.rounds.len() > uds.stats.iterations,
        "UDS trace must record every sweep including the final fixpoint check"
    );
    let final_alive = dds_trace.rounds.last().and_then(|r| r.alive_edges);
    assert_eq!(
        final_alive, dds.stats.edges_last_iter,
        "DDS trace final-round alive_edges must match Stats::edges_last_iter"
    );

    let traces: Vec<serde_json::Value> = [&uds_trace, &dds_trace]
        .iter()
        .map(|t| serde_json::from_str(&t.to_json()).expect("telemetry trace JSON parses"))
        .collect();
    serde_json::json!({ "schema": "dsd-telemetry-section/v1", "traces": traces })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace = args.iter().any(|a| a == "--trace");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "BENCH_SMOKE.json".to_string()
            } else {
                "BENCH_PR10.json".to_string()
            }
        });
    let scale: f64 = if smoke {
        // CI fast mode: the generators clamp to their floors (~100
        // vertices), so the whole report runs in well under a second.
        0.01
    } else {
        std::env::var("DSD_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
    };

    let g = filament_graph(scale);
    let power = power_law_graph(scale);
    let d = directed_chung_lu_bench(scale);
    let df = directed_filament_bench(scale);
    eprintln!(
        "bench_report: filament graph |V|={} |E|={}, directed |V|={} |E|={}, \
         directed filament |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges(),
        d.num_vertices(),
        d.num_edges(),
        df.num_vertices(),
        df.num_edges()
    );

    let reps = if smoke { 1 } else { 3 };
    let mut ws = SweepWorkspace::new();

    // --- Sweep-engine ablation (the tentpole measurement). ---
    let core_iters = |r: &dsd_core::uds::CoreDecomposition| r.stats.iterations;
    let legacy = timing("local_legacy_collect_per_sweep", reps, core_iters, || {
        local_decomposition_legacy(&g)
    });
    let engine_sync =
        timing("local_engine_sync", reps, core_iters, || local_decomposition_in(&g, &mut ws));
    let engine_async = timing("local_engine_async", reps, core_iters, || {
        local_decomposition_async_in(&g, &mut ws)
    });
    let engine_frontier = timing("local_engine_frontier", reps, core_iters, || {
        local_decomposition_frontier_in(&g, &mut ws)
    });
    let speedup = legacy.best_secs / engine_sync.best_secs.max(1e-12);

    // --- Parity contract (acceptance: bit-identical sync results). ---
    let reference = local_decomposition_legacy(&g);
    let pool_sizes = vec![1usize, 2, 4];
    let mut core_ok = true;
    let mut iters_ok = true;
    for &p in &pool_sizes {
        let engine = with_threads(p, || local_decomposition_in(&g, &mut SweepWorkspace::new()));
        core_ok &= engine.core == reference.core;
        iters_ok &= engine.stats.iterations == reference.stats.iterations;
    }
    let asynchronous = local_decomposition_async_in(&g, &mut ws);
    let parity = Parity {
        core_numbers_identical: core_ok,
        iteration_counts_identical: iters_ok,
        pool_sizes,
        async_fixpoint_identical: asynchronous.core == reference.core,
        sync_sweeps: reference.stats.iterations,
        async_sweeps: asynchronous.stats.iterations,
    };

    // --- DDS peeling-engine ablation (the PR-2 tentpole measurement). ---
    let mut pws = PeelWorkspace::new();
    let wd_iters = |r: &WDecomposition| r.stats.iterations;
    let dds_legacy =
        timing("w_star_legacy_directed", reps, wd_iters, || w_star_decomposition_legacy(&d));
    let dds_engine =
        timing("w_star_engine_directed", reps, wd_iters, || w_star_decomposition_in(&d, &mut pws));
    let dds_legacy_fil =
        timing("w_decomposition_legacy_filament", reps, wd_iters, || w_decomposition_legacy(&df));
    let dds_engine_fil = timing("w_decomposition_engine_filament", reps, wd_iters, || {
        w_decomposition_in(&df, &mut pws)
    });
    let dds_speedup = dds_legacy_fil.best_secs / dds_engine_fil.best_secs.max(1e-12);

    // --- DDS parity contract (acceptance: induce-numbers and w*
    // bit-identical to the legacy kernel; pwc identical across pools). ---
    let dds_reference = w_decomposition_legacy(&d);
    let dds_pool_sizes = vec![1usize, 2, 4];
    let mut induce_ok = true;
    let mut w_star_ok = true;
    let mut star_edges_ok = true;
    for &p in &dds_pool_sizes {
        let engine = with_threads(p, || w_decomposition_in(&d, &mut PeelWorkspace::new()));
        induce_ok &= engine.induce_number == dds_reference.induce_number;
        w_star_ok &= engine.w_star == dds_reference.w_star;
        star_edges_ok &= engine.w_star_edges(&d) == dds_reference.w_star_edges(&d);
        // The warm-started path must land on the same w*-subgraph too.
        let warm = with_threads(p, || w_star_decomposition_in(&d, &mut PeelWorkspace::new()));
        w_star_ok &= warm.w_star == dds_reference.w_star;
        star_edges_ok &= warm.w_star_edges(&d) == dds_reference.w_star_edges(&d);
    }
    let pwc_reference = dsd_core::dds::pwc::pwc(&d);
    let mut pwc_ok = true;
    for &p in &dds_pool_sizes {
        let r = with_threads(p, || dsd_core::dds::pwc::pwc(&d));
        pwc_ok &= r.result.s == pwc_reference.result.s
            && r.result.t == pwc_reference.result.t
            && r.cn_pair == pwc_reference.cn_pair
            && r.w_star == pwc_reference.w_star;
    }
    let dds = DdsSection {
        engine: vec![dds_legacy, dds_engine, dds_legacy_fil, dds_engine_fil],
        speedup_engine_vs_legacy: dds_speedup,
        parity: DdsParity {
            induce_numbers_identical: induce_ok,
            w_star_identical: w_star_ok,
            w_star_edges_identical: star_edges_ok,
            pool_sizes: dds_pool_sizes,
            pwc_identical_across_pools: pwc_ok,
        },
    };

    // --- Ingest engine ablation + parity (the PR-4 tentpole measurement;
    // asserts internally, so a parity failure aborts the run). ---
    let ingest = ingest_section(scale, reps);

    // --- Exact-flow engine ablation + parity (the PR-5 tentpole
    // measurement; asserts internally). ---
    let flow = flow_section(scale, reps);

    // --- Compressed substrate ablation + parity (the PR-6 tentpole
    // measurement; asserts internally). ---
    let compression = compression_section(&g, &d, scale, reps);

    // --- Iterative near-optimal engine ablation + parity (the PR-7
    // tentpole measurement; asserts internally). ---
    let iterative = iterative_section(scale, reps, smoke);

    // --- Flight-recorder cost disclosure (the PR-8 tentpole measurement;
    // asserts the < 2% contract and histogram pool invariance). ---
    let observability = observability_section(&g, reps, smoke);

    // --- Incremental decomposition engine (the PR-9 tentpole
    // measurement; asserts batched == scratch parity internally). ---
    let dynamic = dynamic_section(&g, &power, &d, &df, reps);

    // --- Snapshot-isolated query daemon (the PR-10 tentpole measurement;
    // every benched query asserts its own success). ---
    let serving = serving_section(&g, reps, smoke);

    // --- End-to-end contributed algorithms. ---
    let pkmc_t = timing(
        "pkmc_sync",
        reps,
        |r: &dsd_core::uds::pkmc::PkmcResult| r.stats.iterations,
        || pkmc_in(&g, PkmcConfig::new(), &mut ws),
    );
    let pkmc_async_t = timing(
        "pkmc_async",
        reps,
        |r: &dsd_core::uds::pkmc::PkmcResult| r.stats.iterations,
        || pkmc_in(&g, PkmcConfig { mode: SweepMode::Asynchronous, ..PkmcConfig::new() }, &mut ws),
    );
    let pwc_t = timing(
        "pwc",
        reps,
        |r: &dsd_core::dds::pwc::PwcResult| r.result.stats.iterations,
        || dsd_core::dds::pwc::pwc(&d),
    );

    // --- Per-round traces (recorder on only for these extra runs). ---
    let telemetry = trace.then(|| collect_traces(&g, &d, rayon::current_num_threads()));

    let report = Report {
        schema: "dsd-bench-report/v10",
        pr: 10,
        graphs: vec![
            GraphMeta {
                name: "filament_chung_lu",
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                description: "Chung-Lu gamma=2.3 body with 4 long filaments (Table-6 regime)",
            },
            GraphMeta {
                name: "power_law_chung_lu",
                vertices: power.num_vertices(),
                edges: power.num_edges(),
                description: "plain Chung-Lu gamma=2.3 body (dynamic-engine churn target)",
            },
            GraphMeta {
                name: "directed_chung_lu",
                vertices: d.num_vertices(),
                edges: d.num_edges(),
                description: "directed Chung-Lu benchmark body (DDS engine + PWC timings)",
            },
            GraphMeta {
                name: "directed_filament_chung_lu",
                vertices: df.num_vertices(),
                edges: df.num_edges(),
                description: "directed Chung-Lu body with 4 skip-arc filament tails \
                              (long-cascade regime for the DDS engine)",
            },
        ],
        sweep_engine: vec![legacy, engine_sync, engine_async, engine_frontier],
        speedup_engine_vs_legacy: speedup,
        parity,
        dds,
        ingest,
        flow,
        compression,
        iterative,
        observability,
        dynamic,
        serving,
        end_to_end: vec![pkmc_t, pkmc_async_t, pwc_t],
        telemetry,
        threads: rayon::current_num_threads(),
        notes: format!(
            "best-of-{reps} wall times; UDS sync engine must be bit-identical to the seed \
             kernel (core numbers and iteration counts) at pool sizes 1/2/4; DDS engine \
             induce-numbers, w*, and w*-subgraph must be bit-identical to the legacy \
             Algorithm 3 kernel and pwc identical at pool sizes 1/2/4 (inner round counts \
             are schedule-dependent and not compared); dds.speedup_engine_vs_legacy is \
             the PR-2 acceptance headline (target >= 1.3), measured on the full \
             decomposition of the filament directed benchmark — the long-cascade regime \
             the frontier engine targets; the warm-started w* runs bulk-peel everything \
             below d_max in a few rounds on either kernel and carry no headline; \
             ingest.speedup_build_vs_legacy_undirected is the PR-4 acceptance headline \
             (target >= 1.5), counting-sort build() vs the legacy global-sort \
             build_legacy() on the million-edge synthetic multiset, with directed build, \
             chunked-parallel-parse-vs-serial, and CSR-reorder-vs-round-trip speedups \
             reported alongside; every ingest path is asserted bit-identical to its \
             legacy oracle at pool sizes 1/2/4 before the report is written; \
             flow.speedup_uds_exact_vs_legacy is the PR-5 acceptance headline: the \
             PKMC-seeded, core-pruned, integer-capacity push-relabel exact oracle vs \
             the float/Dinic legacy binary search on the 800-vertex ER benchmark, \
             with the DDS counterpart and the raw push-relabel-vs-Dinic \
             layered-network ratio alongside (the DDS engine bisects to the exact \
             certification slack ~7e-10 where the legacy oracle stops at float 1e-6, \
             so on the tiny DDS instance it pays ~10 extra bisection levels for the \
             certificate and its ratio is below 1 by design); push-relabel \
             values are asserted equal to Dinic on pseudorandom networks, extracted \
             min-cut capacity equal to the flow value, and engine exact densities \
             invariant across pool sizes 1/2/4 before the report is written; \
             compression.bytes_per_arc_undirected is the PR-6 acceptance headline \
             (asserted < 4.0, the plain-CSR adjacency entry), measured on the \
             degree-reordered filament graph with the table overhead included, \
             with the no-reorder and directed figures, encode throughput, and the \
             fused-decode sweep/peel cost ratios alongside (fused decode trades \
             cycles for space, so those ratios carry no target); fused-decode \
             sweep h-values and peel induce-numbers are asserted bit-identical to \
             the plain-CSR engines at pool sizes 1/2/4, decompress() and the \
             binio v2 mmap round-trip asserted equal to the inputs, and the \
             spill-mode builders (shard cap forced low enough that even the smoke \
             run streams >= 2 shards) asserted equal to build() and build_legacy() \
             at pool sizes 1/2/4 before the report is written; \
             iterative.speedup_greedypp_vs_exact is the PR-7 acceptance headline \
             (target > 1 in full runs): Greedy++ with --certify exact (dual-gap \
             early stop at epsilon 0.01, then 1-2 incumbent-probing flow calls) vs \
             the full uds_exact_certified guess ladder on the seeded power-law \
             configuration benchmark, with the FISTA counterpart, \
             iterations-to-epsilon at 0.1/0.01/0.001 off an uncapped dual-gap \
             trajectory, and certified densities asserted equal to the oracle; \
             both engines asserted bit-identical on plain and compressed storage \
             at pool sizes 1/2/4 before the report is written; all \
             timed runs execute with the telemetry recorder disabled (its hot-path cost \
             is one relaxed atomic load, contract < 2% — see DESIGN.md section 7), so \
             engine-vs-legacy ratios are comparable with the PR-1/PR-2 baselines; \
             observability.recorder_off_overhead_pct is the PR-8 disclosure (asserted \
             < 2 in full runs): the measured disabled-probe cost times the probe count \
             of one traced sweep run over the recorder-off wall, with the recorder-on \
             ratio (full span/histogram/alloc recording, no contract) alongside, and \
             the round-shape `round/*` histograms asserted bit-identical across pool \
             sizes 1/2/4 on the deterministic sweep engine; \
             dynamic.speedup_batch10_filament is the PR-9 acceptance headline \
             (target >= 3): one frontier-bounded batch update (10 inserts + 10 \
             removes) on the maintained k*-core state of the filament graph vs a \
             from-scratch synchronous sweep of the updated graph, best-of-{reps} with \
             the state restored between reps by applying the inverse batch untimed; \
             batch sizes 1/10/100/1000 on the filament, plain power-law, and both \
             directed benchmarks reported alongside (directed maintenance freezes \
             edges above the W* cutoff and re-peels the rest, so hub-heavy churn \
             can approach a full re-peel by design); batched core vectors and \
             induce-numbers/w* are asserted bit-identical to from-scratch \
             recomputation at pool sizes 1/2/4 before the report is written; \
             serving.speedup_cached_vs_oneshot is the PR-10 headline (target >> 1): \
             one-shot pkmc wall over the best cached densest round trip on a live \
             `dsd serve` daemon over loopback TCP — the certificate is precomputed \
             per snapshot install, so a query pays a frame round trip instead of a \
             decomposition; per-kind latency percentiles are client-side walls on an \
             idle keep-alive connection, update_roundtrip_best_secs is the full \
             delta-apply + certificate-rebuild + install path, and \
             install_stall_max_query_secs is the worst densest latency a concurrent \
             reader observed across the installs (epoch-reclaimed snapshots mean \
             readers never block on the writer); \
             --trace appends recorder-on runs under the `telemetry` key without \
             touching the timings (dsd-trace/v2 documents, span trees truncated to \
             256 nodes)"
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    // Schema guard: the emitted document must round-trip through a JSON
    // parser (the CI smoke run relies on this assertion).
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("emitted JSON parses");
    assert!(
        parsed.pointer("/dds/speedup_engine_vs_legacy").is_some_and(|v| v.is_number()),
        "report schema lost the DDS headline field"
    );
    assert!(
        parsed.pointer("/ingest/speedup_build_vs_legacy_undirected").is_some_and(|v| v.is_number()),
        "report schema lost the ingest headline field"
    );
    for flag in [
        "undirected_build_identical",
        "directed_build_identical",
        "parse_identical",
        "reorder_identical",
    ] {
        assert!(
            parsed
                .pointer(&format!("/ingest/parity/{flag}"))
                .is_some_and(|v| v.as_bool() == Some(true)),
            "ingest parity flag {flag} missing or false"
        );
    }
    assert!(
        parsed.pointer("/ingest/timings").and_then(|t| t.as_array()).is_some_and(|t| t.len() == 8),
        "ingest section must carry all eight timings"
    );
    assert!(
        parsed.pointer("/flow/speedup_uds_exact_vs_legacy").is_some_and(|v| v.is_number()),
        "report schema lost the flow headline field"
    );
    for flag in [
        "raw_flow_identical",
        "cut_capacity_identical",
        "uds_exact_identical",
        "dds_exact_identical",
        "uds_pool_invariant",
        "dds_pool_invariant",
    ] {
        assert!(
            parsed
                .pointer(&format!("/flow/parity/{flag}"))
                .is_some_and(|v| v.as_bool() == Some(true)),
            "flow parity flag {flag} missing or false"
        );
    }
    assert!(
        parsed.pointer("/flow/timings").and_then(|t| t.as_array()).is_some_and(|t| t.len() == 6),
        "flow section must carry all six timings"
    );
    assert!(
        parsed
            .pointer("/compression/bytes_per_arc_undirected")
            .and_then(|v| v.as_f64())
            .is_some_and(|b| b > 0.0 && b < 4.0),
        "report schema lost the compression headline field (or bytes/arc regressed past plain CSR)"
    );
    for flag in [
        "sweep_fused_identical",
        "peel_fused_identical",
        "decompress_roundtrip_identical",
        "binio_v2_roundtrip_identical",
        "spill_build_identical",
    ] {
        assert!(
            parsed
                .pointer(&format!("/compression/parity/{flag}"))
                .is_some_and(|v| v.as_bool() == Some(true)),
            "compression parity flag {flag} missing or false"
        );
    }
    assert!(
        parsed
            .pointer("/compression/timings")
            .and_then(|t| t.as_array())
            .is_some_and(|t| t.len() == 8),
        "compression section must carry all eight timings"
    );
    assert!(
        parsed
            .pointer("/compression/spill_shards")
            .and_then(|v| v.as_u64())
            .is_some_and(|s| s >= 2),
        "compression spill run must stream at least two shards"
    );
    assert!(
        parsed.pointer("/iterative/speedup_greedypp_vs_exact").is_some_and(|v| v.is_number()),
        "report schema lost the iterative headline field"
    );
    assert!(
        parsed.pointer("/iterative/reached_exact").is_some_and(|v| v.as_bool() == Some(true)),
        "iterative certified runs must land on the exact optimum"
    );
    for flag in ["greedypp_identical", "fista_identical"] {
        assert!(
            parsed
                .pointer(&format!("/iterative/parity/{flag}"))
                .is_some_and(|v| v.as_bool() == Some(true)),
            "iterative parity flag {flag} missing or false"
        );
    }
    assert!(
        parsed
            .pointer("/iterative/iterations_to_epsilon")
            .and_then(|t| t.as_array())
            .is_some_and(|t| t.len() == 3),
        "iterative section must carry the three iterations-to-epsilon points"
    );
    assert!(
        parsed
            .pointer("/observability/recorder_off_overhead_pct")
            .and_then(|v| v.as_f64())
            .is_some_and(|p| p.is_finite() && p >= 0.0),
        "report schema lost the observability overhead disclosure"
    );
    assert!(
        parsed
            .pointer("/observability/parity/round_histograms_pool_invariant")
            .is_some_and(|v| v.as_bool() == Some(true)),
        "observability parity flag round_histograms_pool_invariant missing or false"
    );
    assert!(
        parsed
            .pointer("/dynamic/speedup_batch10_filament")
            .and_then(|v| v.as_f64())
            .is_some_and(|s| s.is_finite() && s > 0.0),
        "report schema lost the dynamic headline field"
    );
    for flag in ["undirected_identical_across_pools", "directed_identical_across_pools"] {
        assert!(
            parsed
                .pointer(&format!("/dynamic/parity/{flag}"))
                .is_some_and(|v| v.as_bool() == Some(true)),
            "dynamic parity flag {flag} missing or false"
        );
    }
    assert!(
        parsed
            .pointer("/dynamic/batch_sizes")
            .and_then(|t| t.as_array())
            .is_some_and(|t| t.len() == 4),
        "dynamic section must carry the four batch sizes"
    );
    assert!(
        parsed.pointer("/dynamic/points").and_then(|t| t.as_array()).is_some_and(|t| t.len() == 16),
        "dynamic section must carry 4 batch sizes x 4 benchmarks"
    );
    assert!(
        parsed
            .pointer("/serving/speedup_cached_vs_oneshot")
            .and_then(|v| v.as_f64())
            .is_some_and(|s| s.is_finite() && s > 0.0),
        "report schema lost the serving headline field"
    );
    assert!(
        parsed.pointer("/serving/latency").and_then(|t| t.as_array()).is_some_and(|t| t.len() == 5),
        "serving section must carry the five query-kind latency rows"
    );
    for field in ["update_roundtrip_best_secs", "install_stall_max_query_secs"] {
        assert!(
            parsed
                .pointer(&format!("/serving/{field}"))
                .and_then(|v| v.as_f64())
                .is_some_and(|s| s.is_finite() && s > 0.0),
            "serving section lost the {field} figure"
        );
    }
    if report.telemetry.is_some() {
        for (i, kind) in ["UDS", "DDS"].iter().enumerate() {
            let rounds = parsed.pointer(&format!("/telemetry/traces/{i}/rounds"));
            assert!(
                rounds.and_then(|r| r.as_array()).is_some_and(|r| !r.is_empty()),
                "{kind} trace lost its per-round samples"
            );
            let schema = parsed.pointer(&format!("/telemetry/traces/{i}/schema"));
            assert!(
                schema.and_then(|s| s.as_str()) == Some(dsd_telemetry::TRACE_SCHEMA),
                "{kind} trace must carry the dsd-trace/v2 schema tag"
            );
            let spans = parsed.pointer(&format!("/telemetry/traces/{i}/spans"));
            assert!(
                spans.and_then(|s| s.as_array()).is_some_and(|s| !s.is_empty()),
                "{kind} trace lost its span tree"
            );
        }
        assert!(
            parsed
                .pointer("/telemetry/schema")
                .is_some_and(|s| s.as_str() == Some("dsd-telemetry-section/v1")),
            "telemetry section schema tag missing"
        );
    }
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!(
        "bench_report: UDS engine {:.3}s vs legacy {:.3}s -> {:.2}x; DDS engine {:.3}s vs \
         legacy {:.3}s -> {:.2}x (parity: induce={} w*={} pwc={}); ingest build {:.3}s vs \
         legacy {:.3}s -> {:.2}x (directed {:.2}x, parse {:.2}x, reorder {:.2}x); \
         exact flow: uds engine {:.3}s vs legacy {:.3}s -> {:.2}x, dds -> {:.2}x, \
         raw push-relabel vs dinic {:.2}x; compression {:.3} bytes/arc (no-reorder \
         {:.3}, directed {:.3}, plain 4.0; spill {} shards, parity spill={} sweep={} \
         peel={}); iterative: greedypp {:.2}x, fista {:.2}x vs exact (reached \
         exact={}, parity greedypp={} fista={}); recorder: probe {:.1}ns disabled, \
         est overhead {:.3}%, on/off {:.2}x, hist pool-invariant={}; dynamic: batch=10 \
         filament update {:.2}x vs scratch (parity undirected={} directed={}); serving: \
         cached densest {:.2}x vs one-shot, install stall {:.1}us; wrote {}",
        report.sweep_engine[1].best_secs,
        report.sweep_engine[0].best_secs,
        speedup,
        report.dds.engine[3].best_secs,
        report.dds.engine[2].best_secs,
        report.dds.speedup_engine_vs_legacy,
        report.dds.parity.induce_numbers_identical,
        report.dds.parity.w_star_identical,
        report.dds.parity.pwc_identical_across_pools,
        report.ingest.timings[1].best_secs,
        report.ingest.timings[0].best_secs,
        report.ingest.speedup_build_vs_legacy_undirected,
        report.ingest.speedup_build_vs_legacy_directed,
        report.ingest.speedup_parse_vs_serial,
        report.ingest.speedup_reorder_vs_legacy,
        report.flow.timings[3].best_secs,
        report.flow.timings[2].best_secs,
        report.flow.speedup_uds_exact_vs_legacy,
        report.flow.speedup_dds_exact_vs_legacy,
        report.flow.speedup_push_relabel_vs_dinic,
        report.compression.bytes_per_arc_undirected,
        report.compression.bytes_per_arc_undirected_no_reorder,
        report.compression.bytes_per_arc_directed,
        report.compression.spill_shards,
        report.compression.parity.spill_build_identical,
        report.compression.parity.sweep_fused_identical,
        report.compression.parity.peel_fused_identical,
        report.iterative.speedup_greedypp_vs_exact,
        report.iterative.speedup_fista_vs_exact,
        report.iterative.reached_exact,
        report.iterative.parity.greedypp_identical,
        report.iterative.parity.fista_identical,
        report.observability.probe_disabled_ns,
        report.observability.recorder_off_overhead_pct,
        report.observability.ratio_recorder_on_vs_off,
        report.observability.parity.round_histograms_pool_invariant,
        report.dynamic.speedup_batch10_filament,
        report.dynamic.parity.undirected_identical_across_pools,
        report.dynamic.parity.directed_identical_across_pools,
        report.serving.speedup_cached_vs_oneshot,
        report.serving.install_stall_max_query_secs * 1e6,
        out_path
    );
}
