//! `bench_report` — the perf-trajectory baseline emitter.
//!
//! Times the h-index sweep engine (legacy collect-per-sweep kernel vs the
//! workspace-reuse engine in sync and async modes, plus the frontier
//! schedule) and the paper's two contributed algorithms end-to-end (PKMC
//! and PWC) on the seeded stand-in graphs, verifies the engine's parity
//! contract (sync mode bit-identical to the seed kernel across rayon pool
//! sizes {1, 2, 4}), and writes a machine-readable report.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dsd-bench --bin bench_report [-- --out BENCH_PR1.json]
//! ```
//!
//! The default output path is `BENCH_PR1.json` in the current directory
//! (run from the repo root to refresh the committed baseline). Scale the
//! workload with `DSD_BENCH_SCALE` (default 1.0; CI can lower it).

use std::time::{Duration, Instant};

use dsd_core::runner::with_threads;
use dsd_core::uds::local::{
    local_decomposition_async_in, local_decomposition_frontier_in, local_decomposition_in,
    local_decomposition_legacy,
};
use dsd_core::uds::pkmc::{pkmc_in, PkmcConfig};
use dsd_core::uds::sweep::{SweepMode, SweepWorkspace};
use dsd_graph::{DirectedGraph, UndirectedGraph};
use serde::Serialize;

/// One timed kernel/algorithm entry.
#[derive(Serialize)]
struct Timing {
    name: &'static str,
    /// Best-of-`reps` wall seconds (the paper's reporting convention).
    best_secs: f64,
    /// Mean over `reps` wall seconds.
    mean_secs: f64,
    reps: usize,
    /// Convergence sweeps / rounds of the last run.
    iterations: usize,
}

#[derive(Serialize)]
struct GraphMeta {
    name: &'static str,
    vertices: usize,
    edges: usize,
    description: &'static str,
}

#[derive(Serialize)]
struct Parity {
    /// Engine sync core numbers == seed-kernel core numbers.
    core_numbers_identical: bool,
    /// Engine sync iteration count == seed-kernel iteration count.
    iteration_counts_identical: bool,
    /// Both hold at every rayon pool size tried.
    pool_sizes: Vec<usize>,
    /// Async fixpoint equals the sync core numbers.
    async_fixpoint_identical: bool,
    /// Async sweeps needed (last run) vs sync sweeps — the ablation datum.
    sync_sweeps: usize,
    async_sweeps: usize,
}

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    pr: u32,
    graphs: Vec<GraphMeta>,
    /// Sweep-engine micro-comparison on the filament-tailed graph.
    sweep_engine: Vec<Timing>,
    /// `legacy_best / engine_sync_best` — the acceptance headline.
    speedup_engine_vs_legacy: f64,
    parity: Parity,
    /// End-to-end contributed algorithms.
    end_to_end: Vec<Timing>,
    threads: usize,
    notes: String,
}

fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, Duration, T) {
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        let wall = start.elapsed();
        best = best.min(wall);
        total += wall;
        last = Some(out);
    }
    (best, total / reps as u32, last.expect("reps >= 1"))
}

fn timing<T>(
    name: &'static str,
    reps: usize,
    iterations_of: impl Fn(&T) -> usize,
    f: impl FnMut() -> T,
) -> Timing {
    let (best, mean, last) = time_reps(reps, f);
    Timing {
        name,
        best_secs: best.as_secs_f64(),
        mean_secs: mean.as_secs_f64(),
        reps,
        iterations: iterations_of(&last),
    }
}

/// The Table-6 regime stand-in: a power-law body with long filament tails,
/// so Local-style full resweeps pay `O(m)` per sweep for hundreds of
/// sweeps.
fn filament_graph(scale: f64) -> UndirectedGraph {
    let n = (12_000.0 * scale) as usize;
    let m = (72_000.0 * scale) as usize;
    let base = dsd_graph::gen::chung_lu(n.max(100), m.max(500), 2.3, 42);
    let len = (600.0 * scale.sqrt()) as usize;
    dsd_graph::gen::attach_filaments(&base, 4, len.max(20), 43)
}

/// Directed stand-in for the PWC end-to-end timing.
fn directed_graph(scale: f64) -> DirectedGraph {
    let n = (4_000.0 * scale) as usize;
    let m = (32_000.0 * scale) as usize;
    dsd_graph::gen::chung_lu_directed(n.max(100), m.max(500), 2.3, 2.1, 44)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let scale: f64 =
        std::env::var("DSD_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);

    let g = filament_graph(scale);
    let d = directed_graph(scale);
    eprintln!(
        "bench_report: filament graph |V|={} |E|={}, directed |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges(),
        d.num_vertices(),
        d.num_edges()
    );

    let reps = 3;
    let mut ws = SweepWorkspace::new();

    // --- Sweep-engine ablation (the tentpole measurement). ---
    let core_iters = |r: &dsd_core::uds::CoreDecomposition| r.stats.iterations;
    let legacy = timing("local_legacy_collect_per_sweep", reps, core_iters, || {
        local_decomposition_legacy(&g)
    });
    let engine_sync =
        timing("local_engine_sync", reps, core_iters, || local_decomposition_in(&g, &mut ws));
    let engine_async = timing("local_engine_async", reps, core_iters, || {
        local_decomposition_async_in(&g, &mut ws)
    });
    let engine_frontier = timing("local_engine_frontier", reps, core_iters, || {
        local_decomposition_frontier_in(&g, &mut ws)
    });
    let speedup = legacy.best_secs / engine_sync.best_secs.max(1e-12);

    // --- Parity contract (acceptance: bit-identical sync results). ---
    let reference = local_decomposition_legacy(&g);
    let pool_sizes = vec![1usize, 2, 4];
    let mut core_ok = true;
    let mut iters_ok = true;
    for &p in &pool_sizes {
        let engine = with_threads(p, || local_decomposition_in(&g, &mut SweepWorkspace::new()));
        core_ok &= engine.core == reference.core;
        iters_ok &= engine.stats.iterations == reference.stats.iterations;
    }
    let asynchronous = local_decomposition_async_in(&g, &mut ws);
    let parity = Parity {
        core_numbers_identical: core_ok,
        iteration_counts_identical: iters_ok,
        pool_sizes,
        async_fixpoint_identical: asynchronous.core == reference.core,
        sync_sweeps: reference.stats.iterations,
        async_sweeps: asynchronous.stats.iterations,
    };

    // --- End-to-end contributed algorithms. ---
    let pkmc_t = timing(
        "pkmc_sync",
        reps,
        |r: &dsd_core::uds::pkmc::PkmcResult| r.stats.iterations,
        || pkmc_in(&g, PkmcConfig::new(), &mut ws),
    );
    let pkmc_async_t = timing(
        "pkmc_async",
        reps,
        |r: &dsd_core::uds::pkmc::PkmcResult| r.stats.iterations,
        || pkmc_in(&g, PkmcConfig { mode: SweepMode::Asynchronous, ..PkmcConfig::new() }, &mut ws),
    );
    let pwc_t = timing(
        "pwc",
        reps,
        |r: &dsd_core::dds::pwc::PwcResult| r.result.stats.iterations,
        || dsd_core::dds::pwc::pwc(&d),
    );

    let report = Report {
        schema: "dsd-bench-report/v1",
        pr: 1,
        graphs: vec![
            GraphMeta {
                name: "filament_chung_lu",
                vertices: g.num_vertices(),
                edges: g.num_edges(),
                description: "Chung-Lu gamma=2.3 body with 4 long filaments (Table-6 regime)",
            },
            GraphMeta {
                name: "directed_chung_lu",
                vertices: d.num_vertices(),
                edges: d.num_edges(),
                description: "directed Chung-Lu stand-in for the PWC end-to-end timing",
            },
        ],
        sweep_engine: vec![legacy, engine_sync, engine_async, engine_frontier],
        speedup_engine_vs_legacy: speedup,
        parity,
        end_to_end: vec![pkmc_t, pkmc_async_t, pwc_t],
        threads: rayon::current_num_threads(),
        notes: format!(
            "best-of-{reps} wall times; sync engine must be bit-identical to the seed \
             kernel (core numbers and iteration counts) at pool sizes 1/2/4; \
             speedup_engine_vs_legacy is the acceptance headline (target >= 1.3)"
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!(
        "bench_report: engine {:.3}s vs legacy {:.3}s -> speedup {:.2}x (parity: core={} iters={}); wrote {}",
        report.sweep_engine[1].best_secs,
        report.sweep_engine[0].best_secs,
        speedup,
        report.parity.core_numbers_identical,
        report.parity.iteration_counts_identical,
        out_path
    );
}
