//! `bench_gate` — perf-regression gate over the committed bench reports.
//!
//! ```text
//! bench_gate FILE... [--band F]          gate the newest report (highest
//!                                        `pr`) against all earlier ones
//! bench_gate --check FILE... [--band F]  walk the whole series: every
//!                                        report gated against its past
//! ```
//!
//! Only machine-independent ratios are gated (speedups, bytes/arc); see
//! `dsd_bench::gate` for the metric set and the worst-prior-value
//! baseline rationale. Exits non-zero, printing a readable table with
//! `FAIL` rows, when any gated metric regresses beyond the band
//! (default 30%).

use std::process::ExitCode;

use dsd_bench::gate::{check_series, gate, render, Report, DEFAULT_BAND};

fn usage() -> ExitCode {
    eprintln!("usage: bench_gate [--check] [--band F] FILE...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut band = DEFAULT_BAND;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                check = true;
                i += 1;
            }
            "--band" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if !(0.0..1.0).contains(&v) {
                    eprintln!("bench_gate: --band must be in [0, 1)");
                    return ExitCode::from(2);
                }
                band = v;
                i += 2;
            }
            a if a.starts_with("--") => return usage(),
            a => {
                files.push(a.to_string());
                i += 1;
            }
        }
    }
    if files.len() < 2 {
        eprintln!("bench_gate: need at least two reports (a candidate and its history)");
        return usage();
    }

    let mut reports: Vec<Report> = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_gate: {path}: read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        match Report::parse(&text) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("bench_gate: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if check {
        let (out, pass) = check_series(&reports, band);
        print!("{out}");
        if pass {
            println!(
                "bench_gate: series of {} reports self-validates (band {band})",
                reports.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("bench_gate: series contains a regression beyond the {band} band");
            ExitCode::FAILURE
        }
    } else {
        reports.sort_by_key(|r| r.pr);
        let candidate = reports.last().expect("len >= 2 checked above");
        let history: Vec<&Report> = reports[..reports.len() - 1].iter().collect();
        let checks = gate(&history, candidate, band);
        print!("{}", render(candidate.pr, &checks));
        if checks.iter().all(|c| c.pass) {
            println!(
                "bench_gate: PR {} within the {band} band of {} prior reports",
                candidate.pr,
                history.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("bench_gate: PR {} regresses beyond the {band} band", candidate.pr);
            ExitCode::FAILURE
        }
    }
}
