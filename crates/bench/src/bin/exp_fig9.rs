//! Regenerates Fig 9 (Exp-7): DDS thread sweep.
fn main() {
    dsd_bench::experiments::fig9_dds_threads::run();
}
