//! Regenerates Table 6 (Exp-2): iteration counts of core-based algorithms.
fn main() {
    dsd_bench::experiments::table6_iterations::run();
}
