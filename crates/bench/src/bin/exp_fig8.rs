//! Regenerates Fig 8 (Exp-5): DDS efficiency comparison with the
//! budget-limited heavy baselines. Also implements the `--single` child
//! protocol used by the timeout harness.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some((algo, dataset, out)) = dsd_bench::harness::parse_single_mode(&args) {
        dsd_bench::experiments::fig8_dds_efficiency::run_single(&algo, &dataset, &out);
        return;
    }
    dsd_bench::experiments::fig8_dds_efficiency::run();
}
