//! Regenerates Fig 5 (Exp-1): UDS efficiency comparison.
fn main() {
    dsd_bench::experiments::fig5_uds_efficiency::run();
}
