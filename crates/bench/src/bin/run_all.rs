//! Runs every experiment in paper order (Tables 4-7, Figures 5-10).
//!
//! ```sh
//! cargo run --release -p dsd-bench --bin run_all | tee experiments_output.txt
//! ```
//!
//! Heavy baselines inside Fig 8 need the `exp_fig8` binary for the child
//! protocol, so this driver shells out to it.
fn main() {
    dsd_bench::experiments::datasets_tables::run();
    dsd_bench::experiments::fig5_uds_efficiency::run();
    dsd_bench::experiments::table6_iterations::run();
    dsd_bench::experiments::fig6_uds_threads::run();
    dsd_bench::experiments::fig7_uds_scalability::run();
    // Fig 8 spawns child processes of the *current* binary for the heavy
    // baselines; delegate to the dedicated exp_fig8 binary.
    let exe = std::env::current_exe().expect("current exe");
    let fig8 = exe.parent().expect("bin dir").join("exp_fig8");
    let status = std::process::Command::new(&fig8)
        .status()
        .unwrap_or_else(|e| panic!("failed to run {}: {e}", fig8.display()));
    assert!(status.success(), "exp_fig8 failed");
    dsd_bench::experiments::table7_sizes::run();
    dsd_bench::experiments::fig9_dds_threads::run();
    dsd_bench::experiments::fig10_dds_scalability::run();
    dsd_bench::experiments::ratios::run();
    println!("\nAll experiments complete.");
}
