//! Supplementary effectiveness experiment: measured approximation ratios.
fn main() {
    dsd_bench::experiments::ratios::run();
}
