//! Table 6 (Exp-2) — iteration counts of the core-based UDS algorithms.
//!
//! Paper shape: PKC needs thousands of peeling rounds, Local tens to
//! thousands of h-index sweeps, PKMC single digits (its Theorem-1 early
//! stop fires within the first few sweeps on power-law graphs).
//!
//! Since PR 3 the iteration counts are read off the engines' telemetry
//! traces (one [`dsd_telemetry::RoundSample`] per sweep / peel round)
//! instead of being hand-counted, and cross-checked against each
//! algorithm's `Stats::iterations` so the two accountings can never
//! drift apart silently.

use dsd_telemetry::report::{render_matrix, view, TraceView};
use dsd_telemetry::{self as telemetry};

use crate::datasets;
use crate::harness::banner;

/// Runs `run` under a fresh named trace and returns its result and the
/// trace view.
fn traced<R>(label: &str, run: impl FnOnce() -> R) -> (R, TraceView) {
    telemetry::begin_trace(label);
    let out = run();
    let trace = telemetry::end_trace().expect("recorder is enabled");
    (out, view(&trace))
}

/// Rounds that made progress — the Table 6 iteration count. (The engines
/// also record the final fixpoint-check sweep, which removes nothing and
/// which the paper's counts never included.)
fn effective_rounds(v: &TraceView) -> usize {
    v.rounds.iter().filter(|r| r.items_removed > 0).count()
}

/// Runs the full table.
pub fn run() {
    banner("Table 6 (Exp-2): number of iterations in the core-based algorithms");
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let mut rows = Vec::new();
    for d in datasets::UNDIRECTED {
        let g = datasets::load_undirected(d.abbr);
        let (pkc, pkc_t) =
            traced(&format!("pkc/{}", d.abbr), || dsd_core::uds::pkc::pkc_decomposition(&g));
        let (local, local_t) =
            traced(&format!("local/{}", d.abbr), || dsd_core::uds::local::local_decomposition(&g));
        let (pkmc, pkmc_t) = traced(&format!("pkmc/{}", d.abbr), || dsd_core::uds::pkmc::pkmc(&g));
        for (name, t, iters) in [
            ("pkc", &pkc_t, pkc.stats.iterations),
            ("local", &local_t, local.stats.iterations),
            ("pkmc", &pkmc_t, pkmc.stats.iterations),
        ] {
            assert_eq!(
                effective_rounds(t),
                iters,
                "{name}/{}: trace rounds disagree with Stats::iterations",
                d.abbr
            );
        }
        rows.push((
            d.abbr.to_string(),
            vec![
                effective_rounds(&pkc_t).to_string(),
                effective_rounds(&local_t).to_string(),
                effective_rounds(&pkmc_t).to_string(),
                if pkmc.early_stopped { "early".to_string() } else { "converged".to_string() },
            ],
        ));
    }
    telemetry::set_enabled(was_enabled);
    print!("{}", render_matrix("dataset", &["PKC", "Local", "PKMC", "PKMC stop"], &rows));
    println!("(expected shape: PKC >> Local >> PKMC, PKMC in single digits)");
}
