//! Table 6 (Exp-2) — iteration counts of the core-based UDS algorithms.
//!
//! Paper shape: PKC needs thousands of peeling rounds, Local tens to
//! thousands of h-index sweeps, PKMC single digits (its Theorem-1 early
//! stop fires within the first few sweeps on power-law graphs).

use crate::datasets;
use crate::harness::{banner, print_row};

/// Runs the full table.
pub fn run() {
    banner("Table 6 (Exp-2): number of iterations in the core-based algorithms");
    print_row(&["dataset", "PKC", "Local", "PKMC", "PKMC stop"].map(String::from));
    for d in datasets::UNDIRECTED {
        let g = datasets::load_undirected(d.abbr);
        let pkc = dsd_core::uds::pkc::pkc_decomposition(&g);
        let local = dsd_core::uds::local::local_decomposition(&g);
        let pkmc = dsd_core::uds::pkmc::pkmc(&g);
        print_row(&[
            d.abbr.to_string(),
            pkc.stats.iterations.to_string(),
            local.stats.iterations.to_string(),
            pkmc.stats.iterations.to_string(),
            if pkmc.early_stopped { "early".to_string() } else { "converged".to_string() },
        ]);
    }
    println!("(expected shape: PKC >> Local >> PKMC, PKMC in single digits)");
}
