//! Fig 7 (Exp-4) — scalability of the UDS algorithms: run on subgraphs
//! induced by 20%..100% uniform edge samples of the two largest
//! undirected graphs.
//!
//! Paper shape: every algorithm's time grows steadily with the edge count;
//! PKMC is the fastest at every fraction.

use crate::datasets;
use crate::experiments::{default_threads, run_uds_algo};
use crate::harness::{banner, format_secs, print_row};

const DATASETS: [&str; 2] = ["SK", "UN"];
const ALGOS: [&str; 5] = ["pfw", "pbu", "local", "pkc", "pkmc"];
const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the full figure.
pub fn run() {
    let p = default_threads();
    banner(&format!("Fig 7 (Exp-4): scalability of parallel UDS algorithms, p = {p}"));
    for abbr in DATASETS {
        let g = datasets::load_undirected(abbr);
        println!("-- dataset {abbr} --");
        let mut header = vec!["edges%".to_string()];
        header.extend(ALGOS.iter().map(|a| a.to_string()));
        print_row(&header);
        for fraction in FRACTIONS {
            let sample = dsd_graph::sample::sample_edges_undirected(&g, fraction, 0xF167)
                .expect("valid fraction");
            let mut cells = vec![format!("{:.0}%", fraction * 100.0)];
            for algo in ALGOS {
                let wall = dsd_core::runner::with_threads(p, || run_uds_algo(&sample, algo));
                cells.push(format_secs(wall.as_secs_f64()));
            }
            print_row(&cells);
        }
    }
    println!("(expected shape: time grows with edge fraction; pkmc lowest at full scale)");
}
