//! Supplementary effectiveness experiment (not a paper table — the paper's
//! Remark in Section VI-A defers density-quality numbers to references
//! \[6\] and \[7\]; this reproduction measures them anyway).
//!
//! Mini versions of each dataset family (small enough for the flow-exact
//! oracles) are solved by every algorithm and the measured approximation
//! ratio ρ*/ρ is reported. All 2-approximation algorithms must stay ≤ 2.

use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

use crate::harness::{banner, print_row};

const UDS_ALGOS: [(&str, UdsAlgorithm); 6] = [
    ("pkmc", UdsAlgorithm::Pkmc),
    ("charikar", UdsAlgorithm::Charikar),
    ("pbu", UdsAlgorithm::Pbu { epsilon: 0.5 }),
    ("pfw", UdsAlgorithm::Pfw { iterations: 100 }),
    ("bsk", UdsAlgorithm::Bsk),
    ("local", UdsAlgorithm::Local),
];

const DDS_ALGOS: [(&str, DdsAlgorithm); 4] = [
    ("pwc", DdsAlgorithm::Pwc),
    ("pxy", DdsAlgorithm::Pxy),
    ("pbd", DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }),
    ("pfw", DdsAlgorithm::Pfw { iterations: 100 }),
];

/// Runs the effectiveness tables.
pub fn run() {
    banner("Supplementary: measured approximation ratios rho*/rho (UDS)");
    let uds_cases: Vec<(&str, dsd_graph::UndirectedGraph)> = vec![
        ("PT-mini", dsd_graph::gen::chung_lu(800, 4_000, 2.1, 0xA1)),
        ("EW-mini", dsd_graph::gen::chung_lu(1_000, 5_300, 2.2, 0xA2)),
        ("WEB-mini", dsd_graph::gen::rmat(10, 6_000, dsd_graph::gen::RmatParams::default(), 0xA3)),
        ("ER-mini", dsd_graph::gen::erdos_renyi(900, 4_500, 0xA4)),
    ];
    let mut header = vec!["dataset".to_string(), "rho*".to_string()];
    header.extend(UDS_ALGOS.iter().map(|(n, _)| n.to_string()));
    print_row(&header);
    for (name, g) in uds_cases {
        let exact = run_uds(&g, UdsAlgorithm::Exact).density;
        let mut cells = vec![name.to_string(), format!("{exact:.3}")];
        for (label, algo) in UDS_ALGOS {
            let r = run_uds(&g, algo);
            let ratio = exact / r.density;
            assert!(ratio <= 3.01 + 1e-9, "{label} ratio {ratio} out of its guarantee on {name}");
            cells.push(format!("{ratio:.3}"));
        }
        print_row(&cells);
    }
    println!("(pkmc/charikar/bsk/local guarantee <= 2.0; pbu <= 3.0; pfw approaches 1.0)");

    banner("Supplementary: measured approximation ratios rho*/rho (DDS)");
    let dds_cases: Vec<(&str, dsd_graph::DirectedGraph)> = vec![
        ("AM-mini", dsd_graph::gen::chung_lu_directed(90, 500, 3.5, 2.4, 0xB1)),
        ("BA-mini", dsd_graph::gen::chung_lu_directed(90, 500, 2.8, 2.1, 0xB2)),
        ("TW-mini", dsd_graph::gen::chung_lu_directed(90, 500, 2.2, 2.05, 0xB3)),
        ("ER-mini", dsd_graph::gen::erdos_renyi_directed(90, 500, 0xB4)),
    ];
    let mut header = vec!["dataset".to_string(), "rho*".to_string()];
    header.extend(DDS_ALGOS.iter().map(|(n, _)| n.to_string()));
    print_row(&header);
    for (name, g) in dds_cases {
        let exact = run_dds(&g, DdsAlgorithm::Exact).density;
        let mut cells = vec![name.to_string(), format!("{exact:.3}")];
        for (label, algo) in DDS_ALGOS {
            let r = run_dds(&g, algo);
            let ratio = exact / r.density;
            assert!(ratio <= 8.01 + 1e-9, "{label} ratio {ratio} out of its guarantee on {name}");
            cells.push(format!("{ratio:.3}"));
        }
        print_row(&cells);
    }
    println!("(pwc/pxy guarantee <= 2.0; pbd <= 8.0; pfw approaches 1.0)");
}
