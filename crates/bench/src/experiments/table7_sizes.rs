//! Table 7 (Exp-6) — sizes of the graphs processed by PXY vs PWC.
//!
//! PXY computes every cn-pair against the *whole* graph (row "PXY" = |E|),
//! while PWC shrinks the graph before its first main iteration thanks to
//! the `d_max` warm start (row `PWC₁`), shrinks it further by the final
//! `w*` iteration (`PWC_{w*}`), and returns a tiny densest core
//! (`PWC_{D*}`).
//!
//! Paper shape: `PWC₁ ≪ |E|` (on Twitter the first iteration already
//! drops ~50% of edges; on small graphs PWC₁ is the answer itself), and
//! `PWC₁ ≥ PWC_{w*} ≥ PWC_{D*}`.

use crate::datasets;
use crate::harness::{banner, print_row};

/// Runs the full table.
pub fn run() {
    banner("Table 7 (Exp-6): sizes of the graphs processed in PWC and PXY (edge counts)");
    print_row(&["dataset", "PXY", "PWC_1", "PWC_w*", "PWC_D*"].map(String::from));
    for d in datasets::DIRECTED {
        let g = datasets::load_directed(d.abbr);
        let r = dsd_core::dds::pwc::pwc(&g);
        print_row(&[
            d.abbr.to_string(),
            g.num_edges().to_string(),
            r.result.stats.edges_first_iter.unwrap_or(0).to_string(),
            r.result.stats.edges_last_iter.unwrap_or(0).to_string(),
            r.result.stats.edges_result.unwrap_or(0).to_string(),
        ]);
    }
    println!("(expected shape: PWC_1 << PXY; monotone PWC_1 >= PWC_w* >= PWC_D*)");
}
