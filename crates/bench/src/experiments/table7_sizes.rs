//! Table 7 (Exp-6) — sizes of the graphs processed by PXY vs PWC.
//!
//! PXY computes every cn-pair against the *whole* graph (row "PXY" = |E|),
//! while PWC shrinks the graph before its first main iteration thanks to
//! the `d_max` warm start (row `PWC₁`), shrinks it further by the final
//! `w*` iteration (`PWC_{w*}`), and returns a tiny densest core
//! (`PWC_{D*}`).
//!
//! Paper shape: `PWC₁ ≪ |E|` (on Twitter the first iteration already
//! drops ~50% of edges; on small graphs PWC₁ is the answer itself), and
//! `PWC₁ ≥ PWC_{w*} ≥ PWC_{D*}`.
//!
//! Since PR 3 the `PWC₁` / `PWC_{w*}` columns are read off the peeling
//! engine's telemetry trace — the `alive_edges` value of the first and
//! last recorded outer round — and cross-checked against the
//! `Stats::edges_*` fields the hand-rolled table used to print.

use dsd_telemetry::report::{render_matrix, view};
use dsd_telemetry::{self as telemetry};

use crate::datasets;
use crate::harness::banner;

/// Runs the full table.
pub fn run() {
    banner("Table 7 (Exp-6): sizes of the graphs processed in PWC and PXY (edge counts)");
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    let mut rows = Vec::new();
    for d in datasets::DIRECTED {
        let g = datasets::load_directed(d.abbr);
        telemetry::begin_trace(&format!("pwc/{}", d.abbr));
        let r = dsd_core::dds::pwc::pwc(&g);
        let t = view(&telemetry::end_trace().expect("recorder is enabled"));
        assert_eq!(
            t.first_alive(),
            r.result.stats.edges_first_iter.map(|e| e as u64),
            "{}: trace first-round alive_edges disagrees with Stats",
            d.abbr
        );
        assert_eq!(
            t.last_alive(),
            r.result.stats.edges_last_iter.map(|e| e as u64),
            "{}: trace last-round alive_edges disagrees with Stats",
            d.abbr
        );
        rows.push((
            d.abbr.to_string(),
            vec![
                g.num_edges().to_string(),
                t.first_alive().unwrap_or(0).to_string(),
                t.last_alive().unwrap_or(0).to_string(),
                r.result.stats.edges_result.unwrap_or(0).to_string(),
            ],
        ));
    }
    telemetry::set_enabled(was_enabled);
    print!("{}", render_matrix("dataset", &["PXY", "PWC_1", "PWC_w*", "PWC_D*"], &rows));
    println!("(expected shape: PWC_1 << PXY; monotone PWC_1 >= PWC_w* >= PWC_D*)");
}
