//! Fig 5 (Exp-1) — UDS efficiency: five algorithms on six undirected
//! graphs at the default thread count.
//!
//! Paper shape: PKMC fastest everywhere; ≥ 5× and up to 20× faster than
//! PBU; up to 13× faster than Local; PFW up to two orders of magnitude
//! slower.

use crate::datasets;
use crate::experiments::{default_threads, run_uds_algo};
use crate::harness::{banner, format_secs, print_row};

const ALGOS: [&str; 5] = ["pfw", "pbu", "local", "pkc", "pkmc"];

/// Runs the full figure.
pub fn run() {
    let p = default_threads();
    banner(&format!("Fig 5 (Exp-1): efficiency of UDS algorithms, p = {p}"));
    let mut header = vec!["dataset".to_string()];
    header.extend(ALGOS.iter().map(|a| a.to_string()));
    header.push("pkmc-vs-pbu".to_string());
    print_row(&header);
    for d in datasets::UNDIRECTED {
        let g = datasets::load_undirected(d.abbr);
        let mut cells = vec![d.abbr.to_string()];
        let mut times = Vec::new();
        for algo in ALGOS {
            let wall = dsd_core::runner::with_threads(p, || run_uds_algo(&g, algo));
            times.push(wall.as_secs_f64());
            cells.push(format_secs(wall.as_secs_f64()));
        }
        let speedup = times[1] / times[4]; // PBU / PKMC
        cells.push(format!("{speedup:.1}x"));
        print_row(&cells);
    }
    println!("(expected shape: pkmc fastest; pfw slowest by orders of magnitude)");
}
