//! Tables 4 and 5 — dataset statistics of the synthetic stand-ins.

use crate::datasets;
use crate::harness::{banner, print_row};

/// Prints both dataset tables.
pub fn run() {
    banner("Table 4: undirected graphs used in the experiments (synthetic stand-ins)");
    print_row(&["abbr", "category", "|V|", "|E|", "d_max"].map(String::from));
    for d in datasets::UNDIRECTED {
        let g = datasets::load_undirected(d.abbr);
        let s = dsd_graph::stats::undirected_stats(&g);
        print_row(&[
            d.abbr.to_string(),
            d.category.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_degree.to_string(),
        ]);
    }

    banner("Table 5: directed graphs used in the experiments (synthetic stand-ins)");
    print_row(&["abbr", "category", "|V|", "|E|", "d+_max", "d-_max"].map(String::from));
    for d in datasets::DIRECTED {
        let g = datasets::load_directed(d.abbr);
        let s = dsd_graph::stats::directed_stats(&g);
        print_row(&[
            d.abbr.to_string(),
            d.category.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_out_degree.to_string(),
            s.max_in_degree.to_string(),
        ]);
    }
}
