//! Fig 9 (Exp-7) — effect of the number of threads `p` on the DDS
//! algorithms, on three datasets.
//!
//! Paper shape: PWC 7–10× faster than PXY even at `p = 1` and scales
//! near-linearly; PBD peaks around `p = 16` then degrades; PXY scales
//! poorly due to per-pair load imbalance. Same single-core hardware caveat
//! as Fig 6 (see EXPERIMENTS.md).

use crate::datasets;
use crate::experiments::run_dds_algo;
use crate::harness::{banner, format_secs, print_row};

const DATASETS: [&str; 3] = ["AM", "AR", "BA"];
const ALGOS: [&str; 3] = ["pbd", "pxy", "pwc"];
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs the full figure.
pub fn run() {
    banner("Fig 9 (Exp-7): effect of the number of threads p (DDS)");
    for abbr in DATASETS {
        let g = datasets::load_directed(abbr);
        println!("-- dataset {abbr} --");
        let mut header = vec!["p".to_string()];
        header.extend(ALGOS.iter().map(|a| a.to_string()));
        print_row(&header);
        for p in THREADS {
            let mut cells = vec![p.to_string()];
            for algo in ALGOS {
                let wall = dsd_core::runner::with_threads(p, || run_dds_algo(&g, algo));
                cells.push(format_secs(wall.as_secs_f64()));
            }
            print_row(&cells);
        }
    }
    println!("(paper: pwc 7-10x faster than pxy at p=1 and scaling best; flat on 1 core)");
}
