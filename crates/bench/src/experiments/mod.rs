//! One module per paper table/figure. Each exposes `run()` (full
//! experiment, printing paper-style rows) and, where heavy baselines need
//! the subprocess-timeout protocol, `run_single(algo, dataset, out_path)`.

pub mod datasets_tables;
pub mod fig10_dds_scalability;
pub mod fig5_uds_efficiency;
pub mod fig6_uds_threads;
pub mod fig7_uds_scalability;
pub mod fig8_dds_efficiency;
pub mod fig9_dds_threads;
pub mod ratios;
pub mod table6_iterations;
pub mod table7_sizes;

use dsd_graph::{DirectedGraph, UndirectedGraph};
use std::time::Duration;

/// Default thread count (the paper's default is p = 32; scaled to 8 for
/// laptop-class containers — override with `DSD_EXP_THREADS`).
pub fn default_threads() -> usize {
    std::env::var("DSD_EXP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(8)
}

/// Runs the named UDS algorithm once, returning its wall time.
pub fn run_uds_algo(g: &UndirectedGraph, algo: &str) -> Duration {
    use scalable_dsd::UdsAlgorithm;
    let spec = match algo {
        "pfw" => UdsAlgorithm::Pfw { iterations: 100 },
        "pbu" => UdsAlgorithm::Pbu { epsilon: 0.5 },
        "local" => UdsAlgorithm::Local,
        "pkc" => UdsAlgorithm::Pkc,
        "pkmc" => UdsAlgorithm::Pkmc,
        "charikar" => UdsAlgorithm::Charikar,
        other => panic!("unknown UDS algorithm {other}"),
    };
    let (_, wall) = crate::harness::time(|| scalable_dsd::run_uds(g, spec));
    wall
}

/// Runs the named DDS algorithm once, returning its wall time.
pub fn run_dds_algo(g: &DirectedGraph, algo: &str) -> Duration {
    use scalable_dsd::DdsAlgorithm;
    let spec = match algo {
        // Faithful PBS: full O(n^2) ratio enumeration (times out, as in the
        // paper).
        "pbs" => DdsAlgorithm::Pbs { max_rounds: None },
        "pfks" => DdsAlgorithm::Pfks,
        "pfw" => DdsAlgorithm::Pfw { iterations: 300 },
        "pbd" => DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 },
        "pxy" => DdsAlgorithm::Pxy,
        "pwc" => DdsAlgorithm::Pwc,
        other => panic!("unknown DDS algorithm {other}"),
    };
    let (_, wall) = crate::harness::time(|| scalable_dsd::run_dds(g, spec));
    wall
}
