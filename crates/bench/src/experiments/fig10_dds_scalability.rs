//! Fig 10 (Exp-8) — scalability of the DDS algorithms on edge samples of
//! the two largest directed graphs, at `p = 4` (the paper uses 4 because
//! PBD/PXY exhaust memory on Twitter beyond that).
//!
//! Paper shape: all three algorithms grow steadily with the edge count;
//! PWC lowest at every fraction.

use crate::datasets;
use crate::experiments::run_dds_algo;
use crate::harness::{banner, format_secs, print_row};

const DATASETS: [&str; 2] = ["WE", "TW"];
const ALGOS: [&str; 3] = ["pbd", "pxy", "pwc"];
const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the full figure.
pub fn run() {
    let p = 4;
    banner(&format!("Fig 10 (Exp-8): scalability of parallel DDS algorithms, p = {p}"));
    for abbr in DATASETS {
        let g = datasets::load_directed(abbr);
        println!("-- dataset {abbr} --");
        let mut header = vec!["edges%".to_string()];
        header.extend(ALGOS.iter().map(|a| a.to_string()));
        print_row(&header);
        for fraction in FRACTIONS {
            let sample = dsd_graph::sample::sample_edges_directed(&g, fraction, 0xF16A)
                .expect("valid fraction");
            let mut cells = vec![format!("{:.0}%", fraction * 100.0)];
            for algo in ALGOS {
                let wall = dsd_core::runner::with_threads(p, || run_dds_algo(&sample, algo));
                cells.push(format_secs(wall.as_secs_f64()));
            }
            print_row(&cells);
        }
    }
    println!("(expected shape: pbd/pxy grow with the edge fraction; pwc far below pxy)");
}
