//! Fig 6 (Exp-3) — effect of the number of threads `p` on the UDS
//! algorithms, on three datasets.
//!
//! Paper shape: PKMC's time decreases roughly linearly in `p`; PKC and
//! Local flatten out as per-iteration work shrinks. **Hardware caveat**
//! (EXPERIMENTS.md): this container exposes a single CPU core, so all
//! curves are flat here — the sweep is retained to exercise the pool
//! machinery and document the substitution.

use crate::datasets;
use crate::experiments::run_uds_algo;
use crate::harness::{banner, format_secs, print_row};

const DATASETS: [&str; 3] = ["PT", "EW", "EU"];
const ALGOS: [&str; 3] = ["local", "pkc", "pkmc"];
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs the full figure.
pub fn run() {
    banner("Fig 6 (Exp-3): effect of the number of threads p (UDS)");
    for abbr in DATASETS {
        let g = datasets::load_undirected(abbr);
        println!("-- dataset {abbr} --");
        let mut header = vec!["p".to_string()];
        header.extend(ALGOS.iter().map(|a| a.to_string()));
        print_row(&header);
        for p in THREADS {
            let mut cells = vec![p.to_string()];
            for algo in ALGOS {
                let wall = dsd_core::runner::with_threads(p, || run_uds_algo(&g, algo));
                cells.push(format_secs(wall.as_secs_f64()));
            }
            print_row(&cells);
        }
    }
    println!("(paper: near-linear scaling for pkmc on a 40-core server; flat on 1 core)");
}
