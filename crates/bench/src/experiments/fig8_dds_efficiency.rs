//! Fig 8 (Exp-5) — DDS efficiency: six algorithms on six directed graphs.
//!
//! Paper shape: PBS and PFKS exceed the time budget on *every* dataset
//! (their complexities are `O(n²(n+m))` and `O(n(n+m))`); PFW only
//! finishes on the smaller graphs and is orders of magnitude slower; PBD
//! is fast but loose (8-approximation); PWC is the fastest, up to 30×
//! faster than PXY.
//!
//! Heavy baselines run in budget-limited child processes (see
//! `crate::harness`), reproducing the paper's "bars touching the upper
//! boundary" semantics without letting a timed-out run poison later
//! measurements.

use crate::datasets;
use crate::experiments::{default_threads, run_dds_algo};
use crate::harness::{banner, print_row, run_single_subprocess, write_timing, Outcome};

const ALGOS: [&str; 6] = ["pbs", "pfks", "pfw", "pbd", "pxy", "pwc"];
/// Baselines that need the subprocess timeout protocol.
const HEAVY: [&str; 3] = ["pbs", "pfks", "pfw"];

/// Child-process entry: run one algorithm on one dataset, write seconds.
pub fn run_single(algo: &str, dataset: &str, out_path: &str) {
    let g = datasets::load_directed(dataset);
    let p = default_threads();
    let wall = dsd_core::runner::with_threads(p, || run_dds_algo(&g, algo));
    write_timing(out_path, wall);
}

/// Runs the full figure.
pub fn run() {
    let p = default_threads();
    banner(&format!(
        "Fig 8 (Exp-5): efficiency of DDS algorithms, p = {p}, budget = {:?}",
        crate::harness::timeout_budget()
    ));
    let mut header = vec!["dataset".to_string()];
    header.extend(ALGOS.iter().map(|a| a.to_string()));
    header.push("pwc-vs-pxy".to_string());
    print_row(&header);
    for d in datasets::DIRECTED {
        let mut cells = vec![d.abbr.to_string()];
        let mut pxy_secs = f64::NAN;
        let mut pwc_secs = f64::NAN;
        for algo in ALGOS {
            let outcome = if HEAVY.contains(&algo) {
                run_single_subprocess(&["--single", algo, d.abbr])
            } else {
                let g = datasets::load_directed(d.abbr);
                let wall = dsd_core::runner::with_threads(p, || run_dds_algo(&g, algo));
                Outcome::Finished(wall.as_secs_f64())
            };
            if let Outcome::Finished(secs) = outcome {
                if algo == "pxy" {
                    pxy_secs = secs;
                }
                if algo == "pwc" {
                    pwc_secs = secs;
                }
            }
            cells.push(outcome.render());
        }
        cells.push(format!("{:.1}x", pxy_secs / pwc_secs));
        print_row(&cells);
    }
    println!("(expected shape: pbs/pfks exceed the budget; pwc fastest, well ahead of pxy)");
}
