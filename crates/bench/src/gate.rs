//! Perf-regression gate over the committed `BENCH_PR*.json` series.
//!
//! Every PR commits a bench report; the series is the repo's only perf
//! history. The gate extracts the *machine-independent* metrics — engine
//! vs legacy speedup ratios, compressed bytes/arc, certified-engine
//! speedups — and fails when the newest report falls beyond a noise band
//! below the worst value the series has ever legitimately held.
//!
//! Raw wall-times are deliberately **not** gated: the series spans
//! different machines and container generations, so only within-report
//! ratios are comparable across it. Ratios still wobble (thread
//! scheduling moves the DDS engine speedup between 8.3x and 13.9x in the
//! real history), which is why the baseline is the *worst prior* value
//! per metric rather than the median — the gate asks "is this worse than
//! the series has ever been, beyond noise?", not "is this below
//! average?". The default band (30%) passes the PR1–7 history; a 2x
//! regression on any gated metric fails it.

use dsd_telemetry::json::Value;

/// Direction of improvement for a gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (speedup ratios).
    HigherIsBetter,
    /// Smaller values are better (bytes/arc, fused-vs-plain time ratios).
    LowerIsBetter,
}

/// A metric the gate tracks: a dotted path into the report JSON plus the
/// direction of improvement.
#[derive(Debug, Clone, Copy)]
pub struct Metric {
    /// Dotted key path into the bench report (e.g. `dds.speedup_engine_vs_legacy`).
    pub path: &'static str,
    /// Which way is better.
    pub direction: Direction,
}

/// The gated metric set. Metrics appear in the series over time (ingest
/// from PR4, flow from PR5, ...); a metric is only compared when both the
/// candidate and at least one prior report carry it.
pub const METRICS: &[Metric] = &[
    Metric { path: "speedup_engine_vs_legacy", direction: Direction::HigherIsBetter },
    Metric { path: "dds.speedup_engine_vs_legacy", direction: Direction::HigherIsBetter },
    Metric {
        path: "ingest.speedup_build_vs_legacy_directed",
        direction: Direction::HigherIsBetter,
    },
    Metric {
        path: "ingest.speedup_build_vs_legacy_undirected",
        direction: Direction::HigherIsBetter,
    },
    Metric { path: "ingest.speedup_parse_vs_serial", direction: Direction::HigherIsBetter },
    Metric { path: "ingest.speedup_reorder_vs_legacy", direction: Direction::HigherIsBetter },
    Metric { path: "flow.speedup_uds_exact_vs_legacy", direction: Direction::HigherIsBetter },
    Metric { path: "flow.speedup_dds_exact_vs_legacy", direction: Direction::HigherIsBetter },
    Metric { path: "flow.speedup_push_relabel_vs_dinic", direction: Direction::HigherIsBetter },
    Metric { path: "compression.bytes_per_arc_undirected", direction: Direction::LowerIsBetter },
    Metric { path: "compression.bytes_per_arc_directed", direction: Direction::LowerIsBetter },
    Metric { path: "compression.ratio_fused_sweep_vs_plain", direction: Direction::LowerIsBetter },
    Metric { path: "compression.ratio_fused_peel_vs_plain", direction: Direction::LowerIsBetter },
    Metric { path: "iterative.speedup_greedypp_vs_exact", direction: Direction::HigherIsBetter },
    Metric { path: "iterative.speedup_fista_vs_exact", direction: Direction::HigherIsBetter },
    Metric { path: "dynamic.speedup_batch10_filament", direction: Direction::HigherIsBetter },
    Metric { path: "serving.speedup_cached_vs_oneshot", direction: Direction::HigherIsBetter },
];

/// Default fractional noise band (0.30 = a metric may be up to 30% worse
/// than the worst prior value before the gate fails).
pub const DEFAULT_BAND: f64 = 0.30;

/// One bench report: its PR number and parsed document.
pub struct Report {
    /// PR number (from the report's `pr` field).
    pub pr: u64,
    /// The parsed JSON document.
    pub doc: Value,
}

impl Report {
    /// Parses a report from JSON text, requiring `pr` and a
    /// `dsd-bench-report/v*` schema string.
    pub fn parse(text: &str) -> Result<Report, String> {
        let doc = dsd_telemetry::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = doc.as_object().ok_or("report must be a JSON object")?;
        let schema = obj.get("schema").and_then(Value::as_str).ok_or("missing 'schema' string")?;
        if !schema.starts_with("dsd-bench-report/v") {
            return Err(format!("schema '{schema}' is not a dsd-bench-report"));
        }
        let pr = obj.get("pr").and_then(Value::as_u64).ok_or("missing 'pr' number")?;
        Ok(Report { pr, doc })
    }
}

/// Looks up a dotted path in a report document, returning the value only
/// if it is a finite number.
pub fn lookup(doc: &Value, path: &str) -> Option<f64> {
    let mut v = doc;
    for part in path.split('.') {
        v = v.as_object()?.get(part)?;
    }
    v.as_f64().filter(|x| x.is_finite())
}

/// Outcome of gating one metric of one candidate report.
pub struct Check {
    /// The metric path.
    pub path: &'static str,
    /// Worst prior value (the baseline floor/ceiling before the band).
    pub baseline: f64,
    /// The candidate's value.
    pub value: f64,
    /// The pass/fail limit after applying the band.
    pub limit: f64,
    /// Whether the candidate is within the band.
    pub pass: bool,
}

/// Gates `candidate` against `history` (any order, candidate excluded):
/// for each metric present in the candidate and in at least one prior
/// report, the candidate must not be worse than the worst prior value by
/// more than `band`. Metrics absent from either side are skipped — the
/// series grows sections over time.
pub fn gate(history: &[&Report], candidate: &Report, band: f64) -> Vec<Check> {
    let mut checks = Vec::new();
    for m in METRICS {
        let Some(value) = lookup(&candidate.doc, m.path) else { continue };
        let prior: Vec<f64> = history.iter().filter_map(|r| lookup(&r.doc, m.path)).collect();
        if prior.is_empty() {
            continue;
        }
        let (baseline, limit, pass) = match m.direction {
            Direction::HigherIsBetter => {
                let worst = prior.iter().copied().fold(f64::INFINITY, f64::min);
                let limit = worst * (1.0 - band);
                (worst, limit, value >= limit)
            }
            Direction::LowerIsBetter => {
                let worst = prior.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let limit = worst * (1.0 + band);
                (worst, limit, value <= limit)
            }
        };
        checks.push(Check { path: m.path, baseline, value, limit, pass });
    }
    checks
}

/// Renders gate results as the readable table the bin prints; one row per
/// compared metric, `FAIL` rows marked.
pub fn render(pr: u64, checks: &[Check]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42}{:>10}{:>10}{:>10}  {}\n",
        format!("PR {pr} vs series"),
        "worst",
        "value",
        "limit",
        "status"
    ));
    for c in checks {
        out.push_str(&format!(
            "{:<42}{:>10.4}{:>10.4}{:>10.4}  {}\n",
            c.path,
            c.baseline,
            c.value,
            c.limit,
            if c.pass { "ok" } else { "FAIL" }
        ));
    }
    if checks.is_empty() {
        out.push_str("  (no comparable metrics)\n");
    }
    out
}

/// Walks the whole series in PR order, gating each report against all
/// earlier ones; returns `(rendered tables, all passed)`. This is
/// `bench_gate --check`: the committed history must self-validate.
pub fn check_series(reports: &[Report], band: f64) -> (String, bool) {
    let mut order: Vec<&Report> = reports.iter().collect();
    order.sort_by_key(|r| r.pr);
    let mut out = String::new();
    let mut all_pass = true;
    for i in 1..order.len() {
        let checks = gate(&order[..i], order[i], band);
        all_pass &= checks.iter().all(|c| c.pass);
        out.push_str(&render(order[i].pr, &checks));
        out.push('\n');
    }
    (out, all_pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pr: u64, body: &str) -> Report {
        Report::parse(&format!("{{\"schema\":\"dsd-bench-report/v7\",\"pr\":{pr},{body}}}"))
            .unwrap()
    }

    #[test]
    fn parse_rejects_non_bench_documents() {
        assert!(Report::parse("{\"schema\":\"dsd-trace/v2\",\"pr\":1}").is_err());
        assert!(Report::parse("{\"schema\":\"dsd-bench-report/v1\"}").is_err());
        assert!(Report::parse("not json").is_err());
    }

    #[test]
    fn lookup_follows_dotted_paths_and_skips_non_finite() {
        let r = report(
            1,
            "\"speedup_engine_vs_legacy\":1.5,\"dds\":{\"speedup_engine_vs_legacy\":10.0}",
        );
        assert_eq!(lookup(&r.doc, "speedup_engine_vs_legacy"), Some(1.5));
        assert_eq!(lookup(&r.doc, "dds.speedup_engine_vs_legacy"), Some(10.0));
        assert_eq!(lookup(&r.doc, "dds.missing"), None);
        let nan = report(2, "\"speedup_engine_vs_legacy\":null");
        assert_eq!(lookup(&nan.doc, "speedup_engine_vs_legacy"), None);
    }

    #[test]
    fn in_band_wobble_passes() {
        let a = report(1, "\"speedup_engine_vs_legacy\":1.9");
        let b = report(2, "\"speedup_engine_vs_legacy\":1.5"); // 21% down: inside 30%
        let checks = gate(&[&a], &b, DEFAULT_BAND);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].pass, "21% dip must stay inside the 30% band");
    }

    #[test]
    fn synthetic_2x_regression_fails() {
        // A history resembling the real series, then a candidate with
        // every gated ratio regressed 2x (speedups halved, bytes/arc
        // doubled). The gate must fail every compared metric.
        let h1 = report(
            6,
            "\"speedup_engine_vs_legacy\":1.899,\
             \"dds\":{\"speedup_engine_vs_legacy\":8.257},\
             \"compression\":{\"bytes_per_arc_undirected\":2.877}",
        );
        let h2 = report(
            7,
            "\"speedup_engine_vs_legacy\":1.941,\
             \"dds\":{\"speedup_engine_vs_legacy\":9.466},\
             \"compression\":{\"bytes_per_arc_undirected\":2.877}",
        );
        let bad = report(
            8,
            "\"speedup_engine_vs_legacy\":0.97,\
             \"dds\":{\"speedup_engine_vs_legacy\":4.73},\
             \"compression\":{\"bytes_per_arc_undirected\":5.75}",
        );
        let checks = gate(&[&h1, &h2], &bad, DEFAULT_BAND);
        assert_eq!(checks.len(), 3);
        assert!(checks.iter().all(|c| !c.pass), "every 2x-regressed metric must fail");
        let table = render(8, &checks);
        assert!(table.contains("FAIL"));
        assert!(table.contains("compression.bytes_per_arc_undirected"));
    }

    #[test]
    fn lower_is_better_direction_is_respected() {
        let a = report(1, "\"compression\":{\"bytes_per_arc_undirected\":2.9}");
        let better = report(2, "\"compression\":{\"bytes_per_arc_undirected\":2.0}");
        let worse = report(3, "\"compression\":{\"bytes_per_arc_undirected\":4.0}");
        assert!(gate(&[&a], &better, DEFAULT_BAND)[0].pass);
        assert!(!gate(&[&a], &worse, DEFAULT_BAND)[0].pass);
    }

    #[test]
    fn missing_metrics_are_skipped_not_failed() {
        // Candidate gains a section the history never had, and the
        // history has one the candidate dropped: neither is compared.
        let old = report(1, "\"speedup_engine_vs_legacy\":1.9");
        let new = report(2, "\"dds\":{\"speedup_engine_vs_legacy\":10.0}");
        assert!(gate(&[&old], &new, DEFAULT_BAND).is_empty());
    }

    #[test]
    fn check_series_walks_in_pr_order() {
        // Passed out of order; the walk must still gate 2 against 1 and
        // 3 against {1, 2}. PR3's dip is within band of the worst prior.
        let reports = vec![
            report(3, "\"speedup_engine_vs_legacy\":1.5"),
            report(1, "\"speedup_engine_vs_legacy\":1.9"),
            report(2, "\"speedup_engine_vs_legacy\":1.85"),
        ];
        let (out, pass) = check_series(&reports, DEFAULT_BAND);
        assert!(pass, "wobble series must pass:\n{out}");
        assert!(out.contains("PR 2 vs series"));
        assert!(out.contains("PR 3 vs series"));
        let regressed = vec![
            report(1, "\"speedup_engine_vs_legacy\":1.9"),
            report(2, "\"speedup_engine_vs_legacy\":0.9"),
        ];
        let (_, pass) = check_series(&regressed, DEFAULT_BAND);
        assert!(!pass);
    }
}
