//! Shared experiment infrastructure: timing, table formatting, and
//! subprocess-based timeouts.
//!
//! The paper gives slow baselines (PBS, PFKS, PFW) a 10⁵-second budget and
//! reports "bars touching the upper boundary" when they exceed it. The
//! scaled-down analogue here is a configurable per-run budget
//! (`DSD_EXP_TIMEOUT_SECS`, default 60 s). To keep a timed-out baseline
//! from poisoning subsequent measurements, each heavy run executes in a
//! *child process* that is killed at the deadline.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Per-run budget for heavy baselines (the paper's 10⁵-second analogue,
/// scaled with the datasets).
pub fn timeout_budget() -> Duration {
    let secs =
        std::env::var("DSD_EXP_TIMEOUT_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(60u64);
    Duration::from_secs(secs)
}

/// Measures the wall time of `f`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Outcome of a budgeted run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Outcome {
    /// Finished within budget; wall seconds of the algorithm itself
    /// (excluding process startup and dataset generation).
    Finished(f64),
    /// Killed at the budget deadline.
    TimedOut,
    /// The child process failed (bug surface, kept distinct from timeout).
    Failed,
}

impl Outcome {
    /// Renders like the paper's plots: a time or an "exceeds budget" marker.
    pub fn render(&self) -> String {
        match self {
            Outcome::Finished(secs) => format_secs(*secs),
            Outcome::TimedOut => format!(">{}s (timeout)", timeout_budget().as_secs()),
            Outcome::Failed => "FAILED".to_string(),
        }
    }
}

/// Spawns the current executable with `args ++ ["--out", tmpfile]`, waits
/// up to the budget, and reads the elapsed seconds the child wrote.
///
/// Children must implement the `--single` protocol: run one algorithm on
/// one dataset and write the bare seconds to the `--out` file.
pub fn run_single_subprocess(args: &[&str]) -> Outcome {
    let mut exe = std::env::current_exe().expect("current exe path");
    // If the binary was replaced on disk while running (e.g. a concurrent
    // cargo build), /proc/self/exe resolves with a " (deleted)" suffix;
    // strip it to reach the rebuilt binary at the same path.
    if let Some(s) = exe.to_str() {
        if let Some(stripped) = s.strip_suffix(" (deleted)") {
            exe = std::path::PathBuf::from(stripped);
        }
    }
    let out_path = std::env::temp_dir().join(format!(
        "dsd_exp_{}_{}.time",
        std::process::id(),
        args.join("_").replace(['/', ' '], "_")
    ));
    let _ = std::fs::remove_file(&out_path);
    let mut child = Command::new(exe)
        .args(args)
        .arg("--out")
        .arg(&out_path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child experiment");
    let deadline = Instant::now() + timeout_budget();
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                if !status.success() {
                    return Outcome::Failed;
                }
                break;
            }
            None => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Outcome::TimedOut;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    match std::fs::read_to_string(&out_path) {
        Ok(text) => match text.trim().parse::<f64>() {
            Ok(secs) => {
                let _ = std::fs::remove_file(&out_path);
                Outcome::Finished(secs)
            }
            Err(_) => Outcome::Failed,
        },
        Err(_) => Outcome::Failed,
    }
}

/// Writes elapsed seconds for the `--single` protocol.
pub fn write_timing(out_path: &str, wall: Duration) {
    std::fs::write(out_path, format!("{:.6}", wall.as_secs_f64())).expect("write timing file");
}

/// Parses `--single ALGO DATASET --out PATH` from an argument list.
/// Returns `None` when the binary should run the full experiment.
pub fn parse_single_mode(args: &[String]) -> Option<(String, String, String)> {
    let pos = args.iter().position(|a| a == "--single")?;
    let algo = args.get(pos + 1)?.clone();
    let dataset = args.get(pos + 2)?.clone();
    let out_pos = args.iter().position(|a| a == "--out")?;
    let out = args.get(out_pos + 1)?.clone();
    Some((algo, dataset, out))
}

/// Human-readable seconds (paper-style, log-range friendly).
pub fn format_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.0}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.2}s")
    } else {
        format!("{secs:.0}s")
    }
}

/// Prints a fixed-width row: first column 12 wide, the rest 16.
pub fn print_row(cells: &[String]) {
    let mut line = String::new();
    for (i, cell) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{cell:<12}"));
        } else {
            line.push_str(&format!("{cell:>16}"));
        }
    }
    println!("{line}");
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_secs_ranges() {
        assert_eq!(format_secs(0.0000014), "1µs");
        assert_eq!(format_secs(0.0025), "2.5ms");
        assert_eq!(format_secs(1.5), "1.50s");
        assert_eq!(format_secs(250.0), "250s");
    }

    #[test]
    fn parse_single_mode_roundtrip() {
        let args: Vec<String> = ["exp", "--single", "pwc", "AM", "--out", "/tmp/x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_single_mode(&args).unwrap();
        assert_eq!(parsed, ("pwc".to_string(), "AM".to_string(), "/tmp/x".to_string()));
        assert!(parse_single_mode(&["exp".to_string()]).is_none());
    }

    #[test]
    fn outcome_render() {
        assert_eq!(Outcome::Finished(0.5).render(), "500.0ms");
        assert!(Outcome::TimedOut.render().contains("timeout"));
    }

    #[test]
    fn timing_file_roundtrip() {
        let path = std::env::temp_dir().join("dsd_harness_test.time");
        write_timing(path.to_str().unwrap(), Duration::from_millis(1500));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!((text.parse::<f64>().unwrap() - 1.5).abs() < 1e-9);
    }
}
