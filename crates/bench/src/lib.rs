//! # dsd-bench
//!
//! Experiment harness for the ICDE 2023 reproduction: a dataset registry of
//! synthetic stand-ins for the paper's 12 graphs, and shared helpers used
//! by the `exp_*` binaries that regenerate every table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod gate;
pub mod harness;
