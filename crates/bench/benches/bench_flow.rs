//! Flow substrate microbenchmarks: Dinic max-flow and the exact oracles.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_flow::Dinic;

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    // A layered flow network.
    let layers = 30usize;
    let width = 20usize;
    group.bench_function("dinic_layered", |b| {
        b.iter(|| {
            let n = layers * width + 2;
            let (s, t) = (n - 2, n - 1);
            let mut d = Dinic::new(n);
            for w in 0..width {
                d.add_edge(s, w, 3.0);
                d.add_edge((layers - 1) * width + w, t, 3.0);
            }
            for l in 0..layers - 1 {
                for w in 0..width {
                    d.add_edge(l * width + w, (l + 1) * width + (w + 7) % width, 2.0);
                    d.add_edge(l * width + w, (l + 1) * width + (w + 3) % width, 2.0);
                }
            }
            d.max_flow(s, t)
        })
    });
    let g = dsd_graph::gen::erdos_renyi(150, 700, 3);
    group.bench_function("uds_exact_150v", |b| b.iter(|| dsd_flow::uds_exact(&g)));
    let dg = dsd_graph::gen::erdos_renyi_directed(16, 70, 4);
    group.bench_function("dds_exact_16v", |b| b.iter(|| dsd_flow::dds_exact(&dg)));
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
