//! Flow substrate microbenchmarks: the push-relabel engine vs the Dinic
//! legacy solver on a raw layered network, and the exact oracles on both
//! flow backends.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_flow::{Dinic, PushRelabel};

const LAYERS: usize = 30;
const WIDTH: usize = 20;

/// Arcs of the layered benchmark network (`s = n-2`, `t = n-1`).
fn layered_arcs() -> (usize, Vec<(usize, usize, u64)>) {
    let n = LAYERS * WIDTH + 2;
    let (s, t) = (n - 2, n - 1);
    let mut arcs = Vec::new();
    for w in 0..WIDTH {
        arcs.push((s, w, 3u64));
        arcs.push(((LAYERS - 1) * WIDTH + w, t, 3));
    }
    for l in 0..LAYERS - 1 {
        for w in 0..WIDTH {
            arcs.push((l * WIDTH + w, (l + 1) * WIDTH + (w + 7) % WIDTH, 2));
            arcs.push((l * WIDTH + w, (l + 1) * WIDTH + (w + 3) % WIDTH, 2));
        }
    }
    (n, arcs)
}

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow");
    group.sample_size(10);
    let (n, arcs) = layered_arcs();
    let (s, t) = (n - 2, n - 1);
    group.bench_function("dinic_layered", |b| {
        b.iter(|| {
            let mut d = Dinic::new(n);
            for &(u, v, cap) in &arcs {
                d.add_edge(u, v, cap as f64);
            }
            d.max_flow(s, t)
        })
    });
    group.bench_function("push_relabel_layered", |b| {
        b.iter(|| {
            let mut pr = PushRelabel::new(n);
            for &(u, v, cap) in &arcs {
                pr.add_edge(u, v, cap);
            }
            pr.max_flow(s, t)
        })
    });
    let g = dsd_graph::gen::erdos_renyi(150, 700, 3);
    group.bench_function("uds_exact_150v", |b| b.iter(|| dsd_flow::uds_exact(&g)));
    group.bench_function("uds_exact_legacy_150v", |b| b.iter(|| dsd_flow::uds_exact_legacy(&g)));
    let dg = dsd_graph::gen::erdos_renyi_directed(16, 70, 4);
    group.bench_function("dds_exact_16v", |b| b.iter(|| dsd_flow::dds_exact(&dg)));
    group.bench_function("dds_exact_legacy_16v", |b| b.iter(|| dsd_flow::dds_exact_legacy(&dg)));
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
