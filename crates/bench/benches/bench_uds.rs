//! Micro-version of Fig 5: all five UDS algorithms on one mid-size
//! power-law graph (plus the PKMC verification-cost ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_core::uds::pkmc::{pkmc_with, PkmcConfig};

fn bench_uds(c: &mut Criterion) {
    let base = dsd_graph::gen::chung_lu(10_000, 80_000, 2.2, 7);
    let g = dsd_graph::gen::attach_filaments(&base, 4, 60, 8);
    let mut group = c.benchmark_group("uds");
    group.sample_size(10);
    group.bench_function("pkmc", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Pkmc))
    });
    group.bench_function("pkmc_unverified", |b| {
        b.iter(|| pkmc_with(&g, PkmcConfig { verify_candidate: false, ..PkmcConfig::new() }))
    });
    group.bench_function("local", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Local))
    });
    group.bench_function("pkc", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Pkc))
    });
    group.bench_function("charikar", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Charikar))
    });
    group.bench_function("bsk_binary_search", |b| b.iter(|| dsd_core::uds::bsk::bsk(&g)));
    group.bench_function("pbu", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Pbu { epsilon: 0.5 }))
    });
    group.bench_function("pfw_20", |b| {
        b.iter(|| scalable_dsd::run_uds(&g, scalable_dsd::UdsAlgorithm::Pfw { iterations: 20 }))
    });
    group.finish();
}

criterion_group!(benches, bench_uds);
criterion_main!(benches);
