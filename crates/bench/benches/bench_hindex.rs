//! h-index kernel ablation (DESIGN.md §6): counting buckets vs sorting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsd_core::uds::local::{h_index_counting, h_index_sorting};
use rand::{Rng, SeedableRng};

fn bench_hindex(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("hindex");
    for &len in &[8usize, 64, 512, 4096] {
        let values: Vec<u32> = (0..len).map(|_| rng.gen_range(0..len as u32)).collect();
        group.bench_with_input(BenchmarkId::new("counting", len), &values, |b, vals| {
            let mut scratch = Vec::new();
            b.iter(|| h_index_counting(vals, &mut scratch))
        });
        // Both kernels now take a reusable scratch buffer, so this compares
        // the kernels rather than the allocators.
        group.bench_with_input(BenchmarkId::new("sorting", len), &values, |b, vals| {
            let mut scratch = Vec::new();
            b.iter(|| h_index_sorting(vals, &mut scratch))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hindex);
criterion_main!(benches);
