//! Algorithm 3 ablation (the paper's Remark in Section V-B): w-induced
//! decomposition with vs without the `d_max` warm start.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_winduced(c: &mut Criterion) {
    let g = dsd_graph::gen::chung_lu_directed(10_000, 80_000, 2.4, 2.1, 31);
    let mut group = c.benchmark_group("winduced");
    group.sample_size(10);
    group.bench_function("full_decomposition", |b| {
        b.iter(|| dsd_core::dds::winduced::w_decomposition(&g))
    });
    group.bench_function("warm_start_w_star_only", |b| {
        b.iter(|| dsd_core::dds::winduced::w_star_decomposition(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_winduced);
criterion_main!(benches);
