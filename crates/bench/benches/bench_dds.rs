//! Micro-version of Fig 8: the three practical DDS algorithms on one
//! mid-size directed power-law graph.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_dds(c: &mut Criterion) {
    let g = dsd_graph::gen::chung_lu_directed(10_000, 80_000, 2.4, 2.1, 11);
    let mut group = c.benchmark_group("dds");
    group.sample_size(10);
    group.bench_function("pwc", |b| {
        b.iter(|| scalable_dsd::run_dds(&g, scalable_dsd::DdsAlgorithm::Pwc))
    });
    group.bench_function("pxy", |b| {
        b.iter(|| scalable_dsd::run_dds(&g, scalable_dsd::DdsAlgorithm::Pxy))
    });
    group.bench_function("pbd", |b| {
        b.iter(|| {
            scalable_dsd::run_dds(&g, scalable_dsd::DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 })
        })
    });
    group.bench_function("pfw_20", |b| {
        b.iter(|| scalable_dsd::run_dds(&g, scalable_dsd::DdsAlgorithm::Pfw { iterations: 20 }))
    });
    group.finish();
}

criterion_group!(benches, bench_dds);
criterion_main!(benches);
