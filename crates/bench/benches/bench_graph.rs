//! Graph substrate microbenchmarks: CSR construction, generators, edge
//! sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use dsd_graph::UndirectedGraphBuilder;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    let g = dsd_graph::gen::chung_lu(20_000, 160_000, 2.3, 5);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    group.bench_function("csr_build_160k_edges", |b| {
        b.iter(|| {
            UndirectedGraphBuilder::with_capacity(20_000, edges.len())
                .add_edges(edges.iter().copied())
                .build()
                .unwrap()
        })
    });
    group.bench_function("gen_chung_lu_160k", |b| {
        b.iter(|| dsd_graph::gen::chung_lu(20_000, 160_000, 2.3, 5))
    });
    group.bench_function("gen_rmat_160k", |b| {
        b.iter(|| dsd_graph::gen::rmat(14, 160_000, dsd_graph::gen::RmatParams::default(), 5))
    });
    group.bench_function("sample_half_edges", |b| {
        b.iter(|| dsd_graph::sample::sample_edges_undirected(&g, 0.5, 9).unwrap())
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| dsd_graph::components::connected_components(&g))
    });
    // Locality ablation: PKMC on the original vs degree-reordered graph.
    let reordered = dsd_graph::reorder::by_degree_descending(&g);
    group.bench_function("pkmc_original_order", |b| b.iter(|| dsd_core::uds::pkmc::pkmc(&g)));
    group.bench_function("pkmc_degree_reordered", |b| {
        b.iter(|| dsd_core::uds::pkmc::pkmc(&reordered.graph))
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
