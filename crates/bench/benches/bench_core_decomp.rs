//! Core-decomposition substrate ablation: serial BZ vs parallel PKC vs
//! Local (paper Algorithm 1, full sweeps) vs the frontier-optimised Local
//! this reproduction adds.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_core_decomp(c: &mut Criterion) {
    let base = dsd_graph::gen::chung_lu(10_000, 80_000, 2.3, 21);
    let g = dsd_graph::gen::attach_filaments(&base, 4, 120, 22);
    let mut group = c.benchmark_group("core_decomp");
    group.sample_size(10);
    group.bench_function("bz_serial", |b| b.iter(|| dsd_core::uds::bz::bz_decomposition(&g)));
    group.bench_function("pkc", |b| b.iter(|| dsd_core::uds::pkc::pkc_decomposition(&g)));
    // Sweep-engine ablation: the seed's collect-per-sweep kernel vs the
    // workspace-reuse engine (sync = bit-identical Jacobi, async = the
    // opt-in Gauss–Seidel schedule), all with full faithful resweeps.
    group.bench_function("local_full_sweeps_legacy", |b| {
        b.iter(|| dsd_core::uds::local::local_decomposition_legacy(&g))
    });
    let mut ws = dsd_core::uds::sweep::SweepWorkspace::new();
    group.bench_function("local_full_sweeps_engine", |b| {
        b.iter(|| dsd_core::uds::local::local_decomposition_in(&g, &mut ws))
    });
    group.bench_function("local_full_sweeps_engine_async", |b| {
        b.iter(|| dsd_core::uds::local::local_decomposition_async_in(&g, &mut ws))
    });
    group.bench_function("local_frontier", |b| {
        b.iter(|| dsd_core::uds::local::local_decomposition_frontier_in(&g, &mut ws))
    });
    // Extension: truss decomposition on a smaller graph (it is O(m^1.5)).
    let small = dsd_graph::gen::chung_lu(3_000, 24_000, 2.3, 23);
    group.bench_function("truss_decomposition_24k", |b| {
        b.iter(|| dsd_core::uds::truss::truss_decomposition(&small))
    });
    group.finish();
}

criterion_group!(benches, bench_core_decomp);
criterion_main!(benches);
