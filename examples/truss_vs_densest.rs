//! k-truss vs densest subgraph — empirically exploring the paper's stated
//! future-work question: how do other dense-subgraph models (here the
//! k-truss) relate to the densest subgraph?
//!
//! For each generated graph we compare the exact optimum ρ*, the k*-core
//! (PKMC, the paper's 2-approximation), and the maximum k-truss with its
//! certified density lower bound (k_max − 1)/2.
//!
//! ```sh
//! cargo run --release --example truss_vs_densest
//! ```

use dsd_core::uds::truss::truss_decomposition;
use scalable_dsd::{run_uds, UdsAlgorithm};

fn main() {
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "graph", "rho*", "k*-core", "truss", "truss bound", "k_max"
    );
    let cases: Vec<(&str, dsd_graph::UndirectedGraph)> = vec![
        ("erdos-renyi", dsd_graph::gen::erdos_renyi(400, 2400, 3)),
        ("chung-lu 2.2", dsd_graph::gen::chung_lu(400, 2400, 2.2, 5)),
        ("chung-lu 2.6", dsd_graph::gen::chung_lu(400, 2400, 2.6, 7)),
        ("planted 25-clique", dsd_graph::gen::planted_dense(400, 900, 25, 1.0, 9)),
        ("barabasi-albert", dsd_graph::gen::barabasi_albert(400, 6, 11)),
    ];
    for (name, g) in cases {
        let exact = run_uds(&g, UdsAlgorithm::Exact);
        let core = run_uds(&g, UdsAlgorithm::Pkmc);
        let truss = truss_decomposition(&g);
        let truss_density = dsd_core::density::undirected_density(&g, &truss.max_truss_vertices());
        println!(
            "{name:<22} {:>8.3} {:>10.3} {:>10.3} {:>12.3} {:>10}",
            exact.density,
            core.density,
            truss_density,
            truss.density_lower_bound(),
            truss.k_max
        );
        assert!(core.density * 2.0 + 1e-9 >= exact.density, "PKMC guarantee violated");
    }
    println!();
    println!("Observations (the paper's future-work question, empirically):");
    println!("- the k*-core tracks rho* closely (it is the 2-approximation");
    println!("  witness of Lemma 1), while the max truss usually lands lower:");
    println!("  demanding triangles excludes dense but triangle-sparse");
    println!("  structure, and the truss carries no approximation guarantee;");
    println!("- the two coincide exactly on clique-like regions (the planted");
    println!("  clique row), where the truss's certified bound (k_max - 1)/2");
    println!("  is tight — a quick density witness needing no flow.");
}
