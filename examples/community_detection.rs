//! Community detection — the paper's first motivating application
//! (Section I cites DSD for mining network communities).
//!
//! A tight community (a planted near-clique) is hidden inside a sparse
//! random social network; the densest subgraph recovers it. We measure
//! precision/recall of the recovery for PKMC and the baselines.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use scalable_dsd::prelude::*;
use scalable_dsd::UdsAlgorithm;

fn precision_recall(found: &[VertexId], planted: usize) -> (f64, f64) {
    let hits = found.iter().filter(|&&v| (v as usize) < planted).count() as f64;
    let precision = if found.is_empty() { 0.0 } else { hits / found.len() as f64 };
    let recall = hits / planted as f64;
    (precision, recall)
}

fn main() {
    // 2,000-member network, 6,000 random friendships, plus a 40-member
    // community where everyone knows 90% of the others.
    const N: usize = 2_000;
    const BACKGROUND_EDGES: usize = 6_000;
    const COMMUNITY: usize = 40;
    let g =
        scalable_dsd::graph::gen::planted_dense(N, BACKGROUND_EDGES, COMMUNITY, 0.9, 20_240_701);
    println!(
        "network: |V|={} |E|={}  (planted community: {} members)",
        g.num_vertices(),
        g.num_edges(),
        COMMUNITY
    );
    println!(
        "planted community density ≈ {:.2}; background ≈ {:.2}\n",
        0.9 * (COMMUNITY as f64 - 1.0) / 2.0,
        BACKGROUND_EDGES as f64 / N as f64
    );

    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>9}",
        "algorithm", "density", "precision", "recall", "time"
    );
    for (name, algo) in [
        ("pkmc", UdsAlgorithm::Pkmc),
        ("local", UdsAlgorithm::Local),
        ("pkc", UdsAlgorithm::Pkc),
        ("charikar", UdsAlgorithm::Charikar),
        ("pbu", UdsAlgorithm::Pbu { epsilon: 0.5 }),
        ("pfw", UdsAlgorithm::Pfw { iterations: 100 }),
    ] {
        let r = scalable_dsd::run_uds(&g, algo);
        let (p, rec) = precision_recall(&r.vertices, COMMUNITY);
        println!(
            "{name:<10} {:>9.3} {:>9.1}% {:>9.1}% {:>9.2?}",
            r.density,
            100.0 * p,
            100.0 * rec,
            r.stats.wall
        );
    }

    println!("\nAll core-based methods recover the planted community: the");
    println!("community is the k*-core of the network, exactly the structure");
    println!("Lemma 1 of the paper uses as the 2-approximate densest subgraph.");
}
