//! Fake-follower detection — the paper's social-media application
//! (Section I cites DSD for fake-follower and fraud detection; the DDS
//! formulation is exactly the "many accounts all following the same small
//! set of targets" pattern).
//!
//! A follower-fraud ring — `|S|` bot accounts each following most of `|T|`
//! boosted accounts — is planted inside a realistic power-law follow graph.
//! The directed densest subgraph exposes both the bots (the `S` side) and
//! the boosted accounts (the `T` side).
//!
//! ```sh
//! cargo run --release --example fake_follower_detection
//! ```

use scalable_dsd::prelude::*;
use scalable_dsd::DdsAlgorithm;

fn overlap(found: &[VertexId], lo: usize, hi: usize) -> f64 {
    if found.is_empty() {
        return 0.0;
    }
    let hits = found.iter().filter(|&&v| (v as usize) >= lo && (v as usize) < hi).count();
    hits as f64 / (hi - lo) as f64
}

fn main() {
    const N: usize = 5_000;
    const BACKGROUND_EDGES: usize = 40_000;
    const BOTS: usize = 200; // S side of the fraud ring
    const BOOSTED: usize = 40; // T side of the fraud ring

    // Background: power-law follow graph; ring: vertices 0..BOTS are bots,
    // BOTS..BOTS+BOOSTED the boosted accounts, each bot follows each
    // boosted account with probability 0.95.
    let background = scalable_dsd::graph::gen::chung_lu_directed(N, BACKGROUND_EDGES, 2.4, 2.1, 99);
    let mut b = DirectedGraphBuilder::with_capacity(N, BACKGROUND_EDGES + BOTS * BOOSTED);
    for (u, v) in background.edges() {
        b.push_edge(u, v);
    }
    // Plant the ring (deterministic pseudo-random pattern).
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for bot in 0..BOTS as u32 {
        for t in 0..BOOSTED as u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 40 & 0xFFFFF < (0.95 * (1 << 20) as f64) as u64 {
                b.push_edge(bot, BOTS as u32 + t);
            }
        }
    }
    let g = b.build().expect("valid ids");
    let ring_density = (0.95 * (BOTS * BOOSTED) as f64) / ((BOTS * BOOSTED) as f64).sqrt();
    println!(
        "follow graph: |V|={} |E|={}  (ring: {} bots -> {} boosted, density ≈ {:.1})\n",
        g.num_vertices(),
        g.num_edges(),
        BOTS,
        BOOSTED,
        ring_density
    );

    println!(
        "{:<8} {:>9} {:>7} {:>7} {:>12} {:>12} {:>10}",
        "algo", "density", "|S|", "|T|", "bots found", "boosted", "time"
    );
    for (name, algo) in [
        ("pwc", DdsAlgorithm::Pwc),
        ("pxy", DdsAlgorithm::Pxy),
        ("pbd", DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }),
    ] {
        let r = scalable_dsd::run_dds(&g, algo);
        println!(
            "{name:<8} {:>9.3} {:>7} {:>7} {:>11.0}% {:>11.0}% {:>10.2?}",
            r.density,
            r.s.len(),
            r.t.len(),
            100.0 * overlap(&r.s, 0, BOTS),
            100.0 * overlap(&r.t, BOTS, BOTS + BOOSTED),
            r.stats.wall
        );
    }

    println!("\nThe [x*, y*]-core found by PWC is precisely the fraud ring:");
    println!("every bot follows ≥ x* boosted accounts and every boosted");
    println!("account is followed by ≥ y* bots — the paper's Definition 7");
    println!("applied to the fake-follower pattern.");
}
