//! Quickstart: build small graphs, run the paper's two headline algorithms
//! (PKMC for undirected, PWC for directed), and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scalable_dsd::prelude::*;

fn main() {
    // ---- Undirected: the paper's Fig. 1(a) style example -------------
    // A near-clique of four vertices (5 edges, density 5/4) hanging off a
    // sparse tail.
    let g = UndirectedGraphBuilder::new(6)
        .add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)])
        .build()
        .expect("valid edges");

    let uds = densest_subgraph(&g); // PKMC (Algorithm 2)
    println!("== undirected densest subgraph (PKMC) ==");
    println!("graph: |V|={} |E|={}", g.num_vertices(), g.num_edges());
    println!("subgraph vertices: {:?}", uds.vertices);
    println!("density: {:.4} (exact optimum here is 1.25)", uds.density);
    println!("h-index sweeps used: {}", uds.stats.iterations);

    // The guarantee: at most a factor 2 from the true optimum.
    let exact = scalable_dsd::run_uds(&g, UdsAlgorithm::Exact);
    println!("exact density: {:.4} -> ratio {:.3}", exact.density, exact.density / uds.density);

    // ---- Directed: the paper's Fig. 1(b) style example ----------------
    // Two accounts (4, 5) each linking to both of two popular pages (2, 3):
    // S = {4, 5}, T = {2, 3} has density 4 / sqrt(4) = 2.
    let d = DirectedGraphBuilder::new(6)
        .add_edges([(4, 2), (4, 3), (5, 2), (5, 3), (0, 1), (1, 2)])
        .build()
        .expect("valid edges");

    let dds = densest_subgraph_directed(&d); // PWC (Algorithm 4)
    println!("\n== directed densest subgraph (PWC) ==");
    println!("graph: |V|={} |E|={}", d.num_vertices(), d.num_edges());
    println!("S = {:?}", dds.s);
    println!("T = {:?}", dds.t);
    println!("density: {:.4}", dds.density);

    // ---- Scaling up: a synthetic power-law graph ----------------------
    let big = scalable_dsd::graph::gen::chung_lu(50_000, 400_000, 2.2, 7);
    let t0 = std::time::Instant::now();
    let dense = densest_subgraph(&big);
    println!("\n== 400k-edge power-law graph ==");
    println!(
        "k*-core: {} vertices, density {:.2}, {} sweeps, {:.2?}",
        dense.vertices.len(),
        dense.density,
        dense.stats.iterations,
        t0.elapsed()
    );
}
