//! Algorithm comparison — a miniature of the paper's Exp-1 and Exp-5 on a
//! single pair of synthetic graphs, including measured approximation
//! ratios against the flow-based exact optima.
//!
//! ```sh
//! cargo run --release --example algorithm_comparison
//! ```

use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

fn main() {
    // ---------------- undirected ----------------
    // Small enough for the exact flow oracle, large enough to be
    // interesting: 1,000 vertices, power-law.
    let g = scalable_dsd::graph::gen::chung_lu(1_000, 8_000, 2.2, 11);
    println!("undirected graph: |V|={} |E|={}", g.num_vertices(), g.num_edges());
    let exact = run_uds(&g, UdsAlgorithm::Exact);
    println!("exact optimum density (Goldberg flow): {:.4}\n", exact.density);

    println!("{:<10} {:>9} {:>8} {:>7} {:>10}", "algorithm", "density", "ratio", "iters", "time");
    for (name, algo) in [
        ("pkmc", UdsAlgorithm::Pkmc),
        ("local", UdsAlgorithm::Local),
        ("pkc", UdsAlgorithm::Pkc),
        ("charikar", UdsAlgorithm::Charikar),
        ("pbu", UdsAlgorithm::Pbu { epsilon: 0.5 }),
        ("pfw", UdsAlgorithm::Pfw { iterations: 100 }),
    ] {
        let r = run_uds(&g, algo);
        println!(
            "{name:<10} {:>9.4} {:>8.3} {:>7} {:>10.2?}",
            r.density,
            exact.density / r.density,
            r.stats.iterations,
            r.stats.wall
        );
    }
    println!("(every ratio must be <= 2.0 for the 2-approximation algorithms)");

    // ---------------- directed ----------------
    let d = scalable_dsd::graph::gen::chung_lu_directed(400, 3_000, 2.5, 2.2, 13);
    println!("\ndirected graph: |V|={} |E|={}", d.num_vertices(), d.num_edges());
    let dexact = run_dds(&d, DdsAlgorithm::Exact);
    println!("exact optimum density (flow / ratio enumeration): {:.4}\n", dexact.density);

    println!(
        "{:<8} {:>9} {:>8} {:>7} {:>7} {:>10}",
        "algo", "density", "ratio", "|S|", "|T|", "time"
    );
    for (name, algo) in [
        ("pwc", DdsAlgorithm::Pwc),
        ("pxy", DdsAlgorithm::Pxy),
        ("pbd", DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }),
        ("pfks", DdsAlgorithm::Pfks),
        ("pbs*", DdsAlgorithm::Pbs { max_rounds: Some(400) }),
        ("pfw", DdsAlgorithm::Pfw { iterations: 100 }),
    ] {
        let r = run_dds(&d, algo);
        println!(
            "{name:<8} {:>9.4} {:>8.3} {:>7} {:>7} {:>10.2?}",
            r.density,
            dexact.density / r.density,
            r.s.len(),
            r.t.len(),
            r.stats.wall
        );
    }
    println!("(pbs* is round-capped; the faithful O(n^2) version is what the");
    println!(" paper shows timing out on every dataset)");
}
