//! Differential test harness around the certificate-returning exact engine
//! (PR 5 tentpole): on random small graphs the exact optimum must bracket
//! the paper's 2-approximations — `exact >= pkmc >= exact / 2` for UDS
//! (Theorem 1) and `exact >= pwc >= exact / 2` for DDS (Theorem 2) — at
//! every thread-pool size in {1, 2, 4}, with the exact density itself
//! pool-size invariant and the returned certificate actually inducing it.
//!
//! The default case counts are kept small so `cargo test` stays fast; the
//! dedicated CI proptest job raises them through `PROPTEST_CASES`.

use dsd_core::density::{directed_density, undirected_density};
use dsd_core::runner::with_threads;
use proptest::prelude::*;

const POOLS: [usize; 3] = [1, 2, 4];

/// Case count honouring `PROPTEST_CASES` (the CI proptest job raises it).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default_cases)
}

fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    (2usize..28, 0.05f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1) / 2) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi(n, m.max(1), seed)
    })
}

fn directed_graph() -> impl Strategy<Value = dsd_graph::DirectedGraph> {
    (2usize..10, 0.08f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1)) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi_directed(n, m.max(1), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    #[test]
    fn uds_oracle_brackets_pkmc_at_every_pool_size(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let mut densities = Vec::new();
        for &pool in &POOLS {
            let (exact, approx) = with_threads(pool, || {
                (
                    dsd_core::uds::exact::uds_exact_certified(&g),
                    dsd_core::uds::pkmc::pkmc(&g),
                )
            });
            // Theorem 1 bracket: exact >= pkmc >= exact / 2.
            prop_assert!(
                approx.density <= exact.density + 1e-9,
                "pool {pool}: pkmc {} beat the optimum {}", approx.density, exact.density
            );
            prop_assert!(
                2.0 * approx.density + 1e-9 >= exact.density,
                "pool {pool}: pkmc {} below half of {}", approx.density, exact.density
            );
            // The certificate must induce exactly the reported density.
            let induced = undirected_density(&g, &exact.vertices);
            prop_assert!(
                (induced - exact.density).abs() < 1e-12,
                "pool {pool}: certificate induces {induced}, reported {}", exact.density
            );
            densities.push(exact.density);
        }
        // Integer flow arithmetic: the optimum is bitwise pool-invariant.
        prop_assert!(densities.windows(2).all(|w| w[0] == w[1]),
            "exact density varies across pools: {densities:?}");
    }

    #[test]
    fn dds_oracle_brackets_pwc_at_every_pool_size(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let mut densities = Vec::new();
        for &pool in &POOLS {
            let (exact, approx) = with_threads(pool, || {
                (
                    dsd_core::dds::exact::dds_exact_certified(&g),
                    dsd_core::dds::pwc::pwc(&g),
                )
            });
            // Theorem 2 bracket: exact >= pwc >= exact / 2.
            prop_assert!(
                approx.result.density <= exact.density + 1e-6,
                "pool {pool}: pwc {} beat the optimum {}", approx.result.density, exact.density
            );
            prop_assert!(
                2.0 * approx.result.density + 1e-6 >= exact.density,
                "pool {pool}: pwc {} below half of {}", approx.result.density, exact.density
            );
            let induced = directed_density(&g, &exact.s, &exact.t);
            prop_assert!(
                (induced - exact.density).abs() < 1e-12,
                "pool {pool}: certificate induces {induced}, reported {}", exact.density
            );
            densities.push(exact.density);
        }
        // The optimum value is pool-invariant (certificate sets may differ
        // between schedules when several optima exist, densities may not).
        prop_assert!(densities.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "exact density varies across pools: {densities:?}");
    }

    #[test]
    fn uds_engine_and_brute_force_agree(
        (n, m, seed) in (4usize..14, 3usize..40, any::<u64>())
    ) {
        let g = dsd_graph::gen::erdos_renyi(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let (_, brute) = dsd_core::uds::exact::uds_brute_force(&g);
        let cert = dsd_core::uds::exact::uds_exact_certified(&g);
        prop_assert!((brute - cert.density).abs() < 1e-9,
            "brute {brute} vs certified {}", cert.density);
    }

    #[test]
    fn dds_engine_and_brute_force_agree(
        (n, m, seed) in (3usize..9, 2usize..24, any::<u64>())
    ) {
        let g = dsd_graph::gen::erdos_renyi_directed(n, m, seed);
        prop_assume!(g.num_edges() > 0);
        let (_, _, brute) = dsd_core::dds::exact::dds_brute_force(&g);
        let cert = dsd_core::dds::exact::dds_exact_certified(&g);
        prop_assert!((brute - cert.density).abs() < 1e-6,
            "brute {brute} vs certified {}", cert.density);
    }
}
