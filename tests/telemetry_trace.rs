//! Telemetry recorder integration tests with exact trace assertions.
//!
//! These tests assert exact per-round samples and counter totals, so they
//! live in their own integration binary: every file under `tests/` is a
//! separate process, and the recorder is process-global — in a shared
//! binary, concurrently running tests that drive instrumented engines
//! would interleave probe writes into whichever trace is active. The
//! result-parity test (which only asserts on return values and is immune
//! to that) stays in `tests/cross_crate.rs`. Within this file a lock
//! serialises the tests, mirroring the crate's own lifecycle tests.

use std::sync::{Mutex, MutexGuard, OnceLock};

use dsd_core::runner::with_threads;
use dsd_telemetry::{self as telemetry, Counter, DecompositionTrace};

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `run` under a fresh named trace with the recorder on, restoring the
/// previous recorder state afterwards.
fn traced<R>(label: &str, run: impl FnOnce() -> R) -> (R, DecompositionTrace) {
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    telemetry::begin_trace(label);
    let out = run();
    let trace = telemetry::end_trace().expect("recorder is enabled");
    telemetry::set_enabled(was_enabled);
    (out, trace)
}

#[test]
fn uds_sync_rounds_and_counters_stable_across_pool_sizes() {
    // The sweep engine's synchronous schedule is deterministic: every pool
    // size must produce the identical trace — same number of sweeps, same
    // per-round (frontier, examined, removed) triples, same h-update
    // total — not merely the same core numbers.
    let _guard = recorder_lock();
    let base = dsd_graph::gen::chung_lu(800, 6_000, 2.3, 11);
    let g = dsd_graph::gen::attach_filaments(&base, 3, 60, 12);

    let mut reference: Option<(usize, DecompositionTrace)> = None;
    for &p in &[1usize, 2, 4] {
        let (r, t) = traced(&format!("uds_sync/p{p}"), || {
            with_threads(p, || dsd_core::uds::local::local_decomposition(&g))
        });
        assert_eq!(t.threads, Some(p), "pool {p}: trace pool label");
        // The engine records every sweep including the final fixpoint
        // check, which changes nothing.
        assert_eq!(t.rounds.len(), r.stats.iterations + 1, "pool {p}: rounds vs iterations");
        assert_eq!(t.rounds.last().map(|s| s.items_removed), Some(0), "pool {p}: final sweep");
        let applied: usize = t.rounds.iter().map(|s| s.items_removed).sum();
        assert_eq!(
            t.counter(Counter::HUpdatesApplied),
            applied as u64,
            "pool {p}: counter vs per-round removals"
        );
        match &reference {
            None => reference = Some((r.stats.iterations, t)),
            Some((iters, t1)) => {
                assert_eq!(r.stats.iterations, *iters, "pool {p}: iteration count");
                assert_eq!(t.rounds.len(), t1.rounds.len(), "pool {p}: round count");
                for (a, b) in t.rounds.iter().zip(&t1.rounds) {
                    assert_eq!(a.round, b.round, "pool {p}: round index");
                    assert_eq!(a.frontier_len, b.frontier_len, "pool {p}: frontier");
                    assert_eq!(a.edges_examined, b.edges_examined, "pool {p}: examined");
                    assert_eq!(a.items_removed, b.items_removed, "pool {p}: removed");
                }
                assert_eq!(
                    t.counter(Counter::HUpdatesApplied),
                    t1.counter(Counter::HUpdatesApplied),
                    "pool {p}: h-updates"
                );
            }
        }
    }
}

#[test]
fn dds_peel_alive_curve_matches_stats_across_pool_sizes() {
    // The peel engine records one sample per outer iteration with the
    // alive-edge count snapshotted at iteration start. The threshold
    // sequence is data-determined, so the whole (frontier, removed, alive)
    // curve is pool-size independent; only `edges_examined` may vary with
    // scheduling (inner cascade round composition) and is not compared.
    use dsd_core::dds::peel::PeelWorkspace;

    let _guard = recorder_lock();
    let base = dsd_graph::gen::chung_lu_directed(400, 3_200, 2.3, 2.1, 13);
    let g = dsd_graph::gen::attach_filaments_directed(&base, 3, 80, 14);

    let mut reference: Option<DecompositionTrace> = None;
    for &p in &[1usize, 2, 4] {
        let (r, t) = traced(&format!("dds_peel/p{p}"), || {
            with_threads(p, || {
                dsd_core::dds::winduced::w_decomposition_in(&g, &mut PeelWorkspace::new())
            })
        });
        assert!(!t.rounds.is_empty(), "pool {p}: peel recorded rounds");
        assert_eq!(
            t.rounds.first().and_then(|s| s.alive_edges),
            r.stats.edges_first_iter,
            "pool {p}: first alive vs Stats::edges_first_iter"
        );
        assert_eq!(
            t.rounds.last().and_then(|s| s.alive_edges),
            r.stats.edges_last_iter,
            "pool {p}: final alive vs Stats::edges_last_iter"
        );
        let removed: usize = t.rounds.iter().map(|s| s.items_removed).sum();
        assert_eq!(
            Some(removed),
            r.stats.edges_first_iter,
            "pool {p}: removals must account for every initially-alive edge"
        );
        let mut prev = usize::MAX;
        for s in &t.rounds {
            let alive = s.alive_edges.expect("peel rounds carry alive_edges");
            assert!(alive <= prev, "pool {p}: alive curve must be non-increasing");
            prev = alive;
        }
        if p == 1 {
            assert_eq!(t.counter(Counter::CasRetries), 0, "serial run cannot lose claims");
        }
        match &reference {
            None => reference = Some(t),
            Some(t1) => {
                assert_eq!(t.rounds.len(), t1.rounds.len(), "pool {p}: outer rounds");
                for (a, b) in t.rounds.iter().zip(&t1.rounds) {
                    assert_eq!(a.frontier_len, b.frontier_len, "pool {p}: threshold frontier");
                    assert_eq!(a.items_removed, b.items_removed, "pool {p}: peeled per round");
                    assert_eq!(a.alive_edges, b.alive_edges, "pool {p}: alive curve");
                }
            }
        }
    }
}

#[test]
fn traces_survive_the_json_pipeline() {
    // A real engine trace must round-trip through to_json -> parse ->
    // view_from_json, the exact pipeline bench_report --trace and
    // trace_report run in CI.
    use dsd_telemetry::json;
    use dsd_telemetry::report::{view, view_from_json};

    let _guard = recorder_lock();
    let g = dsd_graph::gen::chung_lu(500, 3_500, 2.4, 31);
    let (r, t) = traced("json_round_trip", || dsd_core::uds::pkmc::pkmc(&g));

    let doc = json::parse(&t.to_json()).expect("trace JSON parses");
    let from_json = view_from_json(&doc).expect("trace JSON validates against dsd-trace/v2");
    let direct = view(&t);
    assert_eq!(from_json.rounds.len(), direct.rounds.len());
    assert_eq!(from_json.total_removed(), direct.total_removed());
    assert_eq!(from_json.total_examined(), direct.total_examined());
    // PKMC's effective (progress-making) rounds are its Stats iteration
    // count, the Table 6 contract.
    let effective = direct.rounds.iter().filter(|s| s.items_removed > 0).count();
    assert_eq!(effective, r.stats.iterations);
}
