//! Property tests for the iterative near-optimal engine (PR 7 tentpole):
//! on random graphs, Greedy++ and FISTA must (a) keep the best-so-far
//! density monotone while the dual bound tightens, (b) honour the
//! certified `(1+ε)` gap against the flow oracle's exact optimum, and
//! (c) return bit-identical answers at every thread-pool size in
//! {1, 2, 4} on both plain and compressed storage.
//!
//! The default case counts are kept small so `cargo test` stays fast; the
//! dedicated CI proptest job raises them through `PROPTEST_CASES`.

use dsd_core::runner::with_threads;
use dsd_core::uds::iterate::{fista_storage, greedy_pp_storage, CertifyMode, IterateConfig};
use dsd_graph::UndirectedStorage;
use proptest::prelude::*;

const POOLS: [usize; 3] = [1, 2, 4];

/// Case count honouring `PROPTEST_CASES` (the CI proptest job raises it).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default_cases)
}

fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    (2usize..26, 0.05f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1) / 2) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi(n, m.max(1), seed)
    })
}

/// Both engines over plain storage, as `(name, result)` pairs.
fn run_both(
    g: &dsd_graph::UndirectedGraph,
    cfg: &IterateConfig,
) -> Vec<(&'static str, dsd_core::uds::iterate::IterativeResult)> {
    let storage = UndirectedStorage::Plain(g);
    vec![("greedypp", greedy_pp_storage(&storage, cfg)), ("fista", fista_storage(&storage, cfg))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(10)))]

    #[test]
    fn best_so_far_is_monotone_and_bracketed(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let cfg = IterateConfig { iterations: 12, epsilon: 0.01, certify: CertifyMode::None };
        for (name, r) in run_both(&g, &cfg) {
            for w in r.history.windows(2) {
                prop_assert!(w[1].density + 1e-12 >= w[0].density,
                    "{name}: best-so-far decreased: {} -> {}", w[0].density, w[1].density);
                prop_assert!(w[1].upper_bound <= w[0].upper_bound + 1e-12,
                    "{name}: dual bound loosened: {} -> {}", w[0].upper_bound, w[1].upper_bound);
            }
            for p in &r.history {
                prop_assert!(p.density <= p.upper_bound + 1e-9,
                    "{name}: primal {} above dual bound {}", p.density, p.upper_bound);
            }
        }
    }

    #[test]
    fn certified_gap_brackets_the_exact_optimum(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = dsd_core::uds::exact::uds_exact_certified(&g);
        let cfg = IterateConfig { iterations: 400, epsilon: 0.1, certify: CertifyMode::Dual };
        for (name, r) in run_both(&g, &cfg) {
            // The dual bound always brackets ρ* ...
            prop_assert!(r.upper_bound + 1e-9 >= exact.density,
                "{name}: dual bound {} below the optimum {}", r.upper_bound, exact.density);
            prop_assert!(r.result.density <= exact.density + 1e-9,
                "{name}: achieved {} beats the optimum {}", r.result.density, exact.density);
            // ... and once the gap certificate fires, exact <= (1+ε)·achieved.
            if let dsd_core::uds::iterate::Certificate::DualGap { epsilon, .. } = r.certificate {
                prop_assert!(exact.density <= r.result.density * (1.0 + epsilon) + 1e-9,
                    "{name}: certificate violated: exact {} > (1+{epsilon})·{}",
                    exact.density, r.result.density);
            }
        }
    }

    #[test]
    fn exact_certification_matches_the_oracle(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = dsd_core::uds::exact::uds_exact_certified(&g);
        let cfg = IterateConfig { iterations: 8, epsilon: 0.01, certify: CertifyMode::Exact };
        for (name, r) in run_both(&g, &cfg) {
            prop_assert!((r.result.density - exact.density).abs() < 1e-9,
                "{name}: certified {} vs oracle {}", r.result.density, exact.density);
            prop_assert!(
                matches!(r.certificate, dsd_core::uds::iterate::Certificate::Exact { .. }),
                "{name}: expected an exact certificate, got {:?}", r.certificate);
        }
    }

    #[test]
    fn pool_size_and_storage_do_not_change_the_answer(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        let cfg = IterateConfig { iterations: 10, epsilon: 0.01, certify: CertifyMode::Dual };
        let reference = run_both(&g, &cfg);
        for &pool in &POOLS {
            let (plain, compressed) = with_threads(pool, || {
                let packed = UndirectedStorage::Compressed(&c);
                (run_both(&g, &cfg), vec![
                    ("greedypp", greedy_pp_storage(&packed, &cfg)),
                    ("fista", fista_storage(&packed, &cfg)),
                ])
            });
            for (i, (name, r0)) in reference.iter().enumerate() {
                for r in [&plain[i].1, &compressed[i].1] {
                    prop_assert!(r.result.density == r0.result.density,
                        "{name}: density differs at pool {pool}");
                    prop_assert!(r.result.vertices == r0.result.vertices,
                        "{name}: vertex set differs at pool {pool}");
                    prop_assert!(r.upper_bound == r0.upper_bound,
                        "{name}: dual bound differs at pool {pool}");
                    prop_assert!(r.rounds == r0.rounds,
                        "{name}: round count differs at pool {pool}");
                }
            }
        }
    }
}

// --- Directed engine: the budget-exhausted certificate path (PR 10) ---
//
// The directed Greedy++ hook has no load-vector dual bound, so a run that
// stops on its iteration budget must say "budget-exhausted" with the exact
// round count — never imply convergence. These pin the certificate text
// for arbitrary budgets; the serve layer and `dsd iterate --directed`
// both print this label verbatim.

fn directed_graph() -> impl Strategy<Value = dsd_graph::DirectedGraph> {
    (2usize..22, 0.05f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1)) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi_directed(n, m.max(1), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    #[test]
    fn budget_exhausted_certificate_pins_text_and_round_count(
        g in directed_graph(),
        budget in 1usize..12,
    ) {
        use dsd_core::dds::iterate::{greedy_pp_dds, DdsIterateConfig};
        prop_assume!(g.num_edges() > 0);
        let r = greedy_pp_dds(&g, &DdsIterateConfig { iterations: budget, certify_exact: false });
        // The fixed budget is spent exactly: no early stop exists on this
        // path, so rounds == budget always.
        prop_assert_eq!(r.rounds, budget, "budget {} not honoured", budget);
        prop_assert!(!r.exact_certified);
        prop_assert_eq!(
            r.certificate_label(),
            format!("budget-exhausted ({budget} rounds, no dual bound available)"),
            "certificate text drifted"
        );
    }

    #[test]
    fn exact_certification_replaces_the_budget_label(g in directed_graph()) {
        use dsd_core::dds::iterate::{greedy_pp_dds, DdsIterateConfig};
        prop_assume!(g.num_edges() > 0);
        let r = greedy_pp_dds(&g, &DdsIterateConfig { iterations: 3, certify_exact: true });
        prop_assert!(r.exact_certified);
        prop_assert_eq!(r.certificate_label(), "exact (flow-certified)".to_string());
        // Certification hands the incumbent to the flow oracle, so the
        // reported density is the true optimum — at least as dense as any
        // budget-bounded run on the same graph.
        let uncertified =
            greedy_pp_dds(&g, &DdsIterateConfig { iterations: 10, certify_exact: false });
        prop_assert!(r.result.density + 1e-9 >= uncertified.result.density);
    }
}
