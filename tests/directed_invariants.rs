//! Property tests for the paper's directed theory: Theorem 2
//! (`w* = x*·y*`), the nested property of w-induced subgraphs
//! (Proposition 3), `[x, y]`-core degree constraints (Definition 7), and
//! the Section-I observation that directed density generalises undirected
//! density.

use proptest::prelude::*;

use dsd_core::dds::pwc::pwc;
use dsd_core::dds::pxy::pxy;
use dsd_core::dds::winduced::{edge_endpoints, w_decomposition};
use dsd_core::dds::xycore::xy_core;

fn directed_graph() -> impl Strategy<Value = dsd_graph::DirectedGraph> {
    prop_oneof![
        (2usize..50, 1usize..300, any::<u64>())
            .prop_map(|(n, m, seed)| dsd_graph::gen::erdos_renyi_directed(n, m, seed)),
        (20usize..100, 2.05f64..3.0, any::<u64>()).prop_map(|(n, gamma, seed)| {
            dsd_graph::gen::chung_lu_directed(n, n * 5, gamma, (gamma - 0.9).max(2.01), seed)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pwc_pair_product_equals_max_cn_product(g in directed_graph()) {
        // PWC's derived pair always has the true maximum product x*.y*
        // (via Theorem 2 on the fast path, via enumeration on the erratum
        // fallback), so it must agree with PXY's enumeration.
        prop_assume!(g.num_edges() > 0);
        let w = pwc(&g);
        let p = pxy(&g);
        prop_assert_eq!(
            w.cn_pair.0 as u64 * w.cn_pair.1 as u64,
            p.cn_pair.0 as u64 * p.cn_pair.1 as u64,
            "pair product mismatch"
        );
        // w* always upper-bounds x*.y*; equality certifies Theorem 2.
        prop_assert!(w.w_star >= w.cn_pair.0 as u64 * w.cn_pair.1 as u64);
        if !w.used_fallback {
            prop_assert_eq!(w.w_star, w.cn_pair.0 as u64 * w.cn_pair.1 as u64);
        }
    }

    #[test]
    fn pwc_density_at_least_sqrt_pair_product(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let w = pwc(&g);
        let product = (w.cn_pair.0 as f64) * (w.cn_pair.1 as f64);
        prop_assert!(w.result.density + 1e-9 >= product.sqrt());
    }

    #[test]
    fn w_induced_subgraphs_are_nested(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        // Proposition 3 via induce-numbers: the set of edges with induce
        // number >= w shrinks as w grows, and each such edge set forms a
        // valid w-induced subgraph (all internal weights >= w).
        let d = w_decomposition(&g);
        let endpoints: Vec<(u32, u32)> = edge_endpoints(&g).collect();
        let mut levels: Vec<u64> = d.induce_number.clone();
        levels.sort_unstable();
        levels.dedup();
        let mut prev_size = usize::MAX;
        for &w in &levels {
            let edges: Vec<(u32, u32)> = endpoints
                .iter()
                .zip(d.induce_number.iter())
                .filter(|&(_, &iw)| iw >= w)
                .map(|(&e, _)| e)
                .collect();
            prop_assert!(edges.len() <= prev_size, "not nested at w = {w}");
            prev_size = edges.len();
            let mut outd = vec![0u64; g.num_vertices()];
            let mut ind = vec![0u64; g.num_vertices()];
            for &(u, v) in &edges {
                outd[u as usize] += 1;
                ind[v as usize] += 1;
            }
            for &(u, v) in &edges {
                prop_assert!(outd[u as usize] * ind[v as usize] >= w);
            }
        }
    }

    #[test]
    fn xy_core_constraints_and_nesting(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let mut prev: Option<(usize, usize)> = None;
        for x in 1..=4u32 {
            if let Some(core) = xy_core(&g, x, 2) {
                let mut in_t = vec![false; g.num_vertices()];
                for &v in &core.t {
                    in_t[v as usize] = true;
                }
                let mut in_s = vec![false; g.num_vertices()];
                for &v in &core.s {
                    in_s[v as usize] = true;
                }
                for &u in &core.s {
                    let d = g.out_neighbors(u).iter().filter(|&&v| in_t[v as usize]).count();
                    prop_assert!(d >= x as usize);
                }
                for &v in &core.t {
                    let d = g.in_neighbors(v).iter().filter(|&&u| in_s[u as usize]).count();
                    prop_assert!(d >= 2);
                }
                // [x+1, y]-core is contained in [x, y]-core (side sizes shrink).
                if let Some((ps, pt)) = prev {
                    prop_assert!(core.s.len() <= ps && core.t.len() <= pt);
                }
                prev = Some((core.s.len(), core.t.len()));
            } else {
                prev = Some((0, 0));
            }
        }
    }

    #[test]
    fn directed_density_generalises_undirected(
        (n, m, seed) in (2usize..30, 1usize..120, any::<u64>())
    ) {
        // Section I: doubling an undirected graph and taking S = T = V
        // doubles the undirected density.
        let ug = dsd_graph::gen::erdos_renyi(n, m, seed);
        prop_assume!(ug.num_edges() > 0);
        let mut b = dsd_graph::DirectedGraphBuilder::new(n);
        for (u, v) in ug.edges() {
            b.push_edge(u, v);
            b.push_edge(v, u);
        }
        let dg = b.build().unwrap();
        let all: Vec<u32> = (0..n as u32).collect();
        let und = dsd_core::density::undirected_density(&ug, &all);
        let dir = dsd_core::density::directed_density(&dg, &all, &all);
        prop_assert!((dir - 2.0 * und).abs() < 1e-9);
    }

    #[test]
    fn w_star_lower_bounded_by_d_max(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        // The paper's Remark in Section V-B.
        let d = w_decomposition(&g);
        prop_assert!(d.w_star >= g.max_degree() as u64);
    }
}
