//! Flight-recorder integration tests: span trees, histogram determinism,
//! allocation accounting, exporter well-formedness, v1/v2 schema
//! dispatch, and the `trace_report` malformed-input contract.
//!
//! This binary installs the counting global allocator, so traces recorded
//! here carry real allocation numbers — the same configuration the `dsd`
//! CLI ships with. Like `tests/telemetry_trace.rs`, the recorder is
//! process-global, so a lock serialises the tests.

use std::io::Write;
use std::process::Command;
use std::sync::{Mutex, MutexGuard, OnceLock};

use dsd_core::runner::with_threads;
use dsd_telemetry::{self as telemetry, DecompositionTrace, Phase};

#[global_allocator]
static ALLOC: dsd_telemetry::alloc::CountingAlloc = dsd_telemetry::alloc::CountingAlloc::new();

fn recorder_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn traced<R>(label: &str, run: impl FnOnce() -> R) -> (R, DecompositionTrace) {
    let was_enabled = telemetry::enabled();
    telemetry::set_enabled(true);
    telemetry::begin_trace(label);
    let out = run();
    let trace = telemetry::end_trace().expect("recorder is enabled");
    telemetry::set_enabled(was_enabled);
    (out, trace)
}

#[test]
fn engine_spans_nest_under_an_enclosing_guard() {
    // Spans opened while another span is live on the same thread must be
    // recorded as its children; a real engine run inside a guard hangs
    // its same-thread spans off that root.
    let _guard = recorder_lock();
    let g = dsd_graph::gen::chung_lu(400, 2_500, 2.3, 19);
    let (_, t) = traced("nesting", || {
        let _outer = telemetry::span(Phase::Init);
        dsd_core::uds::pkmc::pkmc(&g)
    });
    assert!(t.spans_dropped == 0, "no spans may be dropped at this scale");
    let roots = t.spans.iter().filter(|s| s.parent.is_none()).count();
    let children = t.spans.iter().filter(|s| s.parent.is_some()).count();
    assert!(roots >= 1, "the enclosing guard must be a root span");
    assert!(children > 0, "engine spans on the guard's thread must be its children");
    // Parent indices precede their children (the flatten contract the
    // schema validator enforces on the JSON side).
    for (i, s) in t.spans.iter().enumerate() {
        if let Some(p) = s.parent {
            assert!((p as usize) < i, "span {i} has a forward parent {p}");
            assert!(
                t.spans[p as usize].start_nanos <= s.start_nanos,
                "child {i} starts before its parent"
            );
        }
    }
}

#[test]
fn round_shape_histograms_identical_at_pools_1_2_4() {
    // The acceptance datum: on a deterministic engine, the round-shape
    // histograms (`round/*`, unit "count") must be bit-identical —
    // same keys, same bucket vectors, same sums — across pool sizes.
    let _guard = recorder_lock();
    let base = dsd_graph::gen::chung_lu(700, 5_000, 2.3, 23);
    let g = dsd_graph::gen::attach_filaments(&base, 3, 50, 24);

    let mut reference: Option<Vec<(String, u64, u64, Vec<(usize, u64)>)>> = None;
    for &p in &[1usize, 2, 4] {
        let (_, t) = traced(&format!("hist_parity/p{p}"), || {
            with_threads(p, || dsd_core::uds::local::local_decomposition(&g))
        });
        let shape: Vec<(String, u64, u64, Vec<(usize, u64)>)> = t
            .histograms
            .iter()
            .filter(|h| h.unit == "count")
            .map(|h| {
                (
                    h.key.to_string(),
                    h.hist.count(),
                    h.hist.sum(),
                    h.hist.nonzero_buckets().collect(),
                )
            })
            .collect();
        assert!(!shape.is_empty(), "pool {p}: sweep run must record round-shape histograms");
        match &reference {
            None => reference = Some(shape),
            Some(r) => assert_eq!(&shape, r, "pool {p}: round-shape histograms diverged"),
        }
    }
}

#[test]
fn alloc_accounting_is_live_in_this_binary() {
    // The global counting allocator is installed above, so traces must
    // carry an alloc section with non-trivial numbers: building a graph
    // inside the trace forces heap traffic.
    let _guard = recorder_lock();
    let (_, t) = traced("alloc", || {
        let g = dsd_graph::gen::chung_lu(600, 4_000, 2.4, 29);
        dsd_core::uds::pkmc::pkmc(&g)
    });
    let a = t.alloc.as_ref().expect("counting allocator is installed in this test binary");
    assert!(a.allocs > 0, "graph build inside the trace must allocate");
    assert!(a.bytes_allocated > 0);
    assert!(a.peak_live_bytes > 0, "peak live high-water must be tracked");
    #[cfg(target_os = "linux")]
    assert!(
        a.peak_rss_bytes.is_some_and(|r| r >= 1 << 20),
        "peak RSS sampling must read VmHWM on Linux"
    );
}

#[test]
fn exporters_emit_wellformed_chrome_and_folded_output() {
    use dsd_telemetry::export::{chrome_trace_json, folded_stacks};
    use dsd_telemetry::json::{self, Value};

    let _guard = recorder_lock();
    let g = dsd_graph::gen::chung_lu(400, 2_500, 2.5, 37);
    let (_, t) = traced("export", || dsd_core::uds::pkmc::pkmc(&g));

    // chrome://tracing: a JSON object with a non-empty traceEvents array
    // whose complete events carry name/ph/ts/dur/pid/tid.
    let chrome = json::parse(&chrome_trace_json(&t)).expect("chrome trace must be valid JSON");
    let events = chrome
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.as_object().and_then(|o| o.get("ph")).and_then(Value::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), t.spans.len(), "one X event per span");
    for e in &complete {
        let o = e.as_object().expect("event object");
        for key in ["name", "ts", "dur", "pid", "tid"] {
            assert!(o.get(key).is_some(), "X event missing {key}");
        }
    }

    // Folded stacks: `path weight` per line, total weight bounded by the
    // summed span durations (self-time never exceeds wall).
    let folded = folded_stacks(&t);
    assert!(!folded.is_empty());
    let mut total: u64 = 0;
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        assert!(!path.is_empty());
        total += weight.parse::<u64>().expect("weight parses as u64");
    }
    let dur_sum: u64 = t.spans.iter().map(|s| s.dur_nanos).sum();
    assert!(total <= dur_sum, "folded self-time {total} exceeds span time {dur_sum}");
}

#[test]
fn v1_and_v2_documents_dispatch_through_one_parser() {
    use dsd_telemetry::json;
    use dsd_telemetry::report::view_from_json;

    let _guard = recorder_lock();
    // A real v2 trace round-trips with its recorder sections intact.
    let g = dsd_graph::gen::chung_lu(300, 1_800, 2.4, 41);
    let (_, t) = traced("dispatch", || dsd_core::uds::pkmc::pkmc(&g));
    let doc = json::parse(&t.to_json()).expect("trace JSON parses");
    let v2 = view_from_json(&doc).expect("v2 document validates");
    assert!(!v2.spans.is_empty());
    assert!(!v2.histograms.is_empty());
    assert!(v2.alloc.is_some(), "allocator is installed, so v2 carries alloc stats");

    // A handcrafted v1 document still parses, with empty recorder fields.
    let v1_text = format!(
        "{{\"schema\":\"{}\",\"label\":\"legacy\",\"threads\":1,\"wall_secs\":0.5,\
         \"rounds\":[],\"counters\":{{}},\"phase_totals\":[]}}",
        dsd_telemetry::TRACE_SCHEMA_V1
    );
    let v1 = view_from_json(&json::parse(&v1_text).expect("v1 JSON parses"))
        .expect("v1 document validates");
    assert!(v1.spans.is_empty() && v1.histograms.is_empty() && v1.alloc.is_none());

    // An unknown schema is rejected with the schema named.
    let bad = v1_text.replace("dsd-trace/v1", "dsd-trace/v9");
    let err = view_from_json(&json::parse(&bad).expect("parses")).unwrap_err();
    assert!(err.contains("dsd-trace/v9"), "error must name the offending schema: {err}");
}

fn trace_report_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_report"))
}

#[test]
fn trace_report_rejects_malformed_input_with_a_diagnostic() {
    // Satellite contract: truncated or garbage input exits non-zero with
    // a one-line diagnostic on stderr — never a panic (no backtrace).
    let dir = std::env::temp_dir();
    let stamp = std::process::id();

    // A truncated (mid-document) trace file.
    let truncated = dir.join(format!("dsd-fr-truncated-{stamp}.json"));
    let full = format!(
        "{{\"schema\":\"{}\",\"label\":\"cut\",\"threads\":1,\"wall_secs\":0.1,\"rounds\":[",
        dsd_telemetry::TRACE_SCHEMA
    );
    std::fs::write(&truncated, &full[..full.len() - 4]).unwrap();

    // Non-UTF8 binary garbage.
    let garbage = dir.join(format!("dsd-fr-garbage-{stamp}.bin"));
    let mut f = std::fs::File::create(&garbage).unwrap();
    f.write_all(&[0xFF, 0xFE, 0x00, 0x80, 0xC3, 0x28, 0x01, 0x02]).unwrap();
    drop(f);

    // A structurally-valid document with a broken v2 section.
    let bad_field = dir.join(format!("dsd-fr-badfield-{stamp}.json"));
    std::fs::write(
        &bad_field,
        format!(
            "{{\"schema\":\"{}\",\"label\":\"x\",\"threads\":1,\"wall_secs\":0.1,\
             \"rounds\":[],\"counters\":{{}},\"phase_totals\":[],\
             \"spans\":[{{\"thread\":0,\"phase\":\"init\",\"parent\":7,\
             \"start_nanos\":0,\"dur_nanos\":1}}],\"spans_dropped\":0,\
             \"histograms\":[],\"alloc\":null}}",
            dsd_telemetry::TRACE_SCHEMA
        ),
    )
    .unwrap();

    for path in [&truncated, &garbage, &bad_field] {
        let out = trace_report_bin().arg(path).output().expect("trace_report runs");
        assert!(!out.status.success(), "{} must exit non-zero", path.display());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("trace_report:"),
            "{}: diagnostic must be a one-line trace_report error, got: {stderr}",
            path.display()
        );
        assert!(!stderr.contains("panicked"), "{}: must not panic: {stderr}", path.display());
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn trace_report_renders_v2_recorder_sections() {
    // End to end through the CLI: a v2 trace written by the recorder is
    // accepted and its span/histogram sections appear in the output.
    let _guard = recorder_lock();
    let g = dsd_graph::gen::chung_lu(300, 1_800, 2.3, 43);
    let (_, t) = traced("cli_render", || dsd_core::uds::pkmc::pkmc(&g));
    let path = std::env::temp_dir().join(format!("dsd-fr-v2-{}.json", std::process::id()));
    std::fs::write(&path, t.to_json()).unwrap();
    let out = trace_report_bin().arg(&path).output().expect("trace_report runs");
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("spans:"), "span summary missing:\n{stdout}");
    assert!(stdout.contains("histogram"), "histogram table missing:\n{stdout}");
    assert!(stdout.contains("alloc:"), "alloc line missing:\n{stdout}");
}
