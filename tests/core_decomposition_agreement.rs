//! Property tests for the undirected core-decomposition substrate: the
//! serial ground truth (BZ), both parallel decompositions (PKC, Local),
//! and PKMC must all agree, and the h-index iteration must respect its
//! invariants (upper bound, monotone convergence — the Lemma 2 context).

use proptest::prelude::*;

use dsd_core::uds::bz::bz_decomposition;
use dsd_core::uds::local::local_decomposition;
use dsd_core::uds::pkc::pkc_decomposition;
use dsd_core::uds::pkmc::pkmc;

fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    prop_oneof![
        // Uniform random graphs.
        (2usize..60, 1usize..400, any::<u64>())
            .prop_map(|(n, m, seed)| dsd_graph::gen::erdos_renyi(n, m, seed)),
        // Power-law graphs (the paper's regime).
        (20usize..120, 2.05f64..3.0, any::<u64>())
            .prop_map(|(n, gamma, seed)| { dsd_graph::gen::chung_lu(n, n * 5, gamma, seed) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_decompositions_agree(g in undirected_graph()) {
        let bz = bz_decomposition(&g);
        let local = local_decomposition(&g);
        let pkc = pkc_decomposition(&g);
        prop_assert_eq!(&bz.core, &local.core, "BZ vs Local");
        prop_assert_eq!(&bz.core, &pkc.core, "BZ vs PKC");
        prop_assert_eq!(bz.k_star, local.k_star);
        prop_assert_eq!(bz.k_star, pkc.k_star);
    }

    #[test]
    fn pkmc_returns_the_k_star_core(g in undirected_graph()) {
        let bz = bz_decomposition(&g);
        let r = pkmc(&g);
        prop_assert_eq!(r.k_star, bz.k_star, "k* mismatch");
        let mut expected = bz.k_star_core();
        expected.sort_unstable();
        prop_assert_eq!(r.vertices, expected, "k*-core set mismatch");
    }

    #[test]
    fn pkmc_never_needs_more_sweeps_than_local(g in undirected_graph()) {
        let local = local_decomposition(&g);
        let r = pkmc(&g);
        prop_assert!(
            r.stats.iterations <= local.stats.iterations + 1,
            "pkmc {} vs local {}", r.stats.iterations, local.stats.iterations
        );
    }

    #[test]
    fn k_star_core_has_min_degree_k_star(g in undirected_graph()) {
        let r = pkmc(&g);
        if r.k_star > 0 {
            let mut member = vec![false; g.num_vertices()];
            for &v in &r.vertices {
                member[v as usize] = true;
            }
            // Proposition 1: at least k* + 1 vertices.
            prop_assert!(r.vertices.len() > r.k_star as usize);
            for &v in &r.vertices {
                let deg = g.neighbors(v).iter().filter(|&&u| member[u as usize]).count();
                prop_assert!(deg >= r.k_star as usize, "vertex {v} degree {deg} < k* {}", r.k_star);
            }
        }
    }

    #[test]
    fn core_numbers_bounded_by_degree(g in undirected_graph()) {
        let bz = bz_decomposition(&g);
        for v in 0..g.num_vertices() {
            prop_assert!(bz.core[v] <= g.degree(v as u32) as u32);
        }
    }

    #[test]
    fn k_core_hierarchy_is_nested(g in undirected_graph()) {
        // The (k+1)-core is contained in the k-core.
        let bz = bz_decomposition(&g);
        for k in 1..=bz.k_star {
            let upper: Vec<usize> =
                (0..g.num_vertices()).filter(|&v| bz.core[v] >= k).collect();
            // Each vertex in the k-core must have >= k neighbours inside it.
            let mut member = vec![false; g.num_vertices()];
            for &v in &upper {
                member[v] = true;
            }
            for &v in &upper {
                let deg = g.neighbors(v as u32).iter().filter(|&&u| member[u as usize]).count();
                prop_assert!(deg >= k as usize);
            }
        }
    }
}
