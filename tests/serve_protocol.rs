//! Protocol conformance for the `dsd serve` daemon (PR 10 tentpole):
//! golden request/response checks for every query kind over a real
//! loopback socket, canonical-error parity for malformed frames and
//! requests, and a proptest that arbitrary byte junk never panics the
//! framer or wedges the daemon.
//!
//! All daemons here are in-process (`dsd_serve::Server`) on OS-assigned
//! loopback ports; the separate `serve_snapshot` suite covers concurrency
//! and update isolation.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};

use dsd_core::dynamic::DynamicState;
use dsd_core::uds::iterate::{CertifyMode, IterateConfig};
use dsd_graph::gen::{erdos_renyi, erdos_renyi_directed};
use dsd_serve::protocol::{self, read_frame, write_frame};
use dsd_serve::{ServeConfig, Server};
use dsd_telemetry::json::{self, Value};
use proptest::prelude::*;

/// Case count honouring `PROPTEST_CASES` (the CI proptest job raises it).
fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default_cases)
}

fn undirected_server(cfg: ServeConfig) -> (Server, SocketAddr) {
    let state = DynamicState::new_undirected(erdos_renyi(40, 150, 7));
    let server = Server::start_tcp(state, "127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("tcp daemon has an address");
    (server, addr)
}

fn directed_server() -> (Server, SocketAddr) {
    let state = DynamicState::new_directed(erdos_renyi_directed(30, 120, 9));
    let server =
        Server::start_tcp(state, "127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("tcp daemon has an address");
    (server, addr)
}

/// One request over a fresh connection; returns the raw response payload.
fn query(addr: SocketAddr, payload: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, payload).expect("send");
    match read_frame(&mut stream).expect("read") {
        Some(Ok(response)) => response,
        other => panic!("expected a response frame, got {other:?}"),
    }
}

fn parse_ok(payload: &str) -> Value {
    let v = json::parse(payload).unwrap_or_else(|e| panic!("bad response {payload:?}: {e}"));
    assert_eq!(
        v.as_object().and_then(|o| o.get("ok")).and_then(Value::as_bool),
        Some(true),
        "expected ok response, got {payload}"
    );
    v
}

fn field_f64(v: &Value, key: &str) -> f64 {
    v.as_object().unwrap().get(key).unwrap().as_f64().unwrap()
}

fn field_u64(v: &Value, key: &str) -> u64 {
    v.as_object().unwrap().get(key).unwrap().as_u64().unwrap()
}

fn vertex_field(v: &Value, key: &str) -> Vec<u64> {
    v.as_object()
        .unwrap()
        .get(key)
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_u64().unwrap())
        .collect()
}

#[test]
fn densest_and_density_round_trip_bit_exact() {
    let g = erdos_renyi(40, 150, 7);
    let (server, addr) = undirected_server(ServeConfig::default());

    let v = parse_ok(&query(addr, "{\"op\":\"densest\"}"));
    assert_eq!(field_u64(&v, "version"), 1);
    let direct: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&g).into();
    assert_eq!(
        field_f64(&v, "density").to_bits(),
        direct.density.to_bits(),
        "serve densest must be bit-identical to one-shot PKMC"
    );
    let mut expected: Vec<u64> = direct.vertices.iter().map(|&x| x as u64).collect();
    expected.sort_unstable();
    assert_eq!(vertex_field(&v, "vertices"), expected);

    // Arbitrary-set density, with duplicates collapsed server-side.
    let v = parse_ok(&query(addr, "{\"op\":\"density\",\"vertices\":[0,1,2,3,2,1]}"));
    let (edges, density) = dsd_core::density::set_edges_and_density(&g, &[0, 1, 2, 3]);
    assert_eq!(field_u64(&v, "size"), 4);
    assert_eq!(field_u64(&v, "edges"), edges as u64);
    assert_eq!(field_f64(&v, "density").to_bits(), density.to_bits());

    server.shutdown();
    server.join();
}

#[test]
fn core_and_neighborhood_match_direct_engines() {
    let g = erdos_renyi(40, 150, 7);
    let (server, addr) = undirected_server(ServeConfig::default());

    let d = dsd_core::uds::bz::bz_decomposition(&g);
    let v = parse_ok(&query(addr, "{\"op\":\"core\",\"vertices\":[0,5,17,39]}"));
    assert_eq!(field_u64(&v, "k_star"), d.k_star as u64);
    let cores = v.as_object().unwrap().get("cores").unwrap().as_array().unwrap();
    assert_eq!(cores.len(), 4);
    for c in cores {
        let vertex = field_u64(c, "vertex") as usize;
        assert_eq!(field_u64(c, "core"), d.core[vertex] as u64);
        assert_eq!(field_u64(c, "degree"), g.degree(vertex as u32) as u64);
        assert_eq!(
            c.as_object().unwrap().get("in_kstar_core").unwrap().as_bool(),
            Some(d.core[vertex] == d.k_star && d.k_star > 0)
        );
    }

    let v = parse_ok(&query(addr, "{\"op\":\"neighborhood\",\"seed\":3,\"k\":2}"));
    let hoods = v.as_object().unwrap().get("neighborhoods").unwrap().as_array().unwrap();
    let direct = dsd_core::seeded::top_dense_neighborhoods(&g, &d.core, 3, 2);
    assert_eq!(hoods.len(), direct.len());
    for (got, want) in hoods.iter().zip(&direct) {
        assert_eq!(field_f64(got, "density").to_bits(), want.density.to_bits());
        assert_eq!(field_u64(got, "edges"), want.edges as u64);
        let want_vs: Vec<u64> = want.vertices.iter().map(|&x| x as u64).collect();
        assert_eq!(vertex_field(got, "vertices"), want_vs);
    }

    server.shutdown();
    server.join();
}

#[test]
fn greedypp_honours_epsilon_and_warm_start() {
    let g = erdos_renyi(40, 150, 7);
    let (server, addr) = undirected_server(ServeConfig::default());

    let v = parse_ok(&query(addr, "{\"op\":\"greedypp\",\"iterations\":8,\"epsilon\":0.05}"));
    let cfg = IterateConfig { iterations: 8, epsilon: 0.05, certify: CertifyMode::Dual };
    let direct = dsd_core::uds::iterate::greedy_pp(&g, &cfg);
    assert_eq!(field_f64(&v, "density").to_bits(), direct.result.density.to_bits());
    assert_eq!(field_u64(&v, "rounds"), direct.rounds as u64);
    assert_eq!(field_f64(&v, "upper_bound").to_bits(), direct.upper_bound.to_bits());
    assert_eq!(v.as_object().unwrap().get("warm").unwrap().as_bool(), Some(false));

    // The first run populated the warm cache: a warm query reports it and
    // still answers with a density no worse than the cold run's.
    let v = parse_ok(&query(addr, "{\"op\":\"greedypp\",\"iterations\":8,\"warm\":true}"));
    assert_eq!(v.as_object().unwrap().get("warm").unwrap().as_bool(), Some(true));
    let warm_density = field_f64(&v, "density");
    assert!(warm_density > 0.0 && warm_density <= field_f64(&v, "upper_bound") + 1e-9);

    server.shutdown();
    server.join();
}

#[test]
fn directed_server_answers_st_queries() {
    let g = erdos_renyi_directed(30, 120, 9);
    let (server, addr) = directed_server();

    let v = parse_ok(&query(addr, "{\"op\":\"densest\"}"));
    let direct = dsd_core::dds::pwc::pwc(&g).result;
    assert_eq!(field_f64(&v, "density").to_bits(), direct.density.to_bits());

    let v = parse_ok(&query(addr, "{\"op\":\"density\",\"s\":[0,1,2],\"t\":[3,4]}"));
    let (edges, density) = dsd_core::density::st_edges_and_density(&g, &[0, 1, 2], &[3, 4]);
    assert_eq!(field_u64(&v, "edges"), edges as u64);
    assert_eq!(field_f64(&v, "density").to_bits(), density.to_bits());

    // Family mismatch uses the canonical redirect string.
    let err = query(addr, "{\"op\":\"density\",\"vertices\":[0,1]}");
    assert_eq!(err, protocol::error_response(&dsd_serve::query::directed_needs_st_error()));

    server.shutdown();
    server.join();
}

#[test]
fn stats_returns_live_trace_document() {
    let (server, addr) =
        undirected_server(ServeConfig { workers: 2, pool_threads: 0, record: true });
    parse_ok(&query(addr, "{\"op\":\"densest\"}"));
    parse_ok(&query(addr, "{\"op\":\"core\",\"vertices\":[0]}"));

    let v = parse_ok(&query(addr, "{\"op\":\"stats\"}"));
    let trace = v.as_object().unwrap().get("trace").unwrap().as_object().unwrap();
    assert_eq!(trace.get("schema").unwrap().as_str(), Some("dsd-trace/v2"));
    let counters = trace.get("counters").unwrap().as_object().unwrap();
    // At least the two queries above (other tests may share the process
    // but each begin_trace resets the shards).
    assert!(counters.get("serve_queries").unwrap().as_u64().unwrap() >= 2);
    assert!(counters.get("snapshot_installs").unwrap().as_u64().unwrap() >= 1);
    assert!(counters.get("serve_cache_hits").unwrap().as_u64().unwrap() >= 2);

    server.shutdown();
    server.join();
}

#[test]
fn update_installs_a_new_version_and_shutdown_is_acknowledged() {
    let (server, addr) = undirected_server(ServeConfig::default());

    // Remove one known edge and insert a fresh one through the daemon.
    let g = erdos_renyi(40, 150, 7);
    let (ru, rv) = g.edges().next().expect("seed graph has edges");
    let (mut iu, mut iv) = (0u32, 1u32);
    'outer: for u in 0..40u32 {
        for v in (u + 1)..40 {
            if !g.has_edge(u, v) {
                (iu, iv) = (u, v);
                break 'outer;
            }
        }
    }
    let v = parse_ok(&query(
        addr,
        &format!("{{\"op\":\"update\",\"insert\":[[{iu},{iv}]],\"remove\":[[{ru},{rv}]]}}"),
    ));
    assert_eq!(field_u64(&v, "version"), 2);
    assert_eq!(field_u64(&v, "edges"), g.num_edges() as u64);

    // Queries now see version 2, bit-identical to a from-scratch run on
    // the mutated graph.
    let mut edges: Vec<(u32, u32)> = g.edges().filter(|&e| e != (ru, rv)).collect();
    edges.push((iu, iv));
    let updated = dsd_graph::UndirectedGraphBuilder::with_capacity(40, edges.len())
        .add_edges(edges)
        .build()
        .unwrap();
    let direct: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&updated).into();
    let v = parse_ok(&query(addr, "{\"op\":\"densest\"}"));
    assert_eq!(field_u64(&v, "version"), 2);
    assert_eq!(field_f64(&v, "density").to_bits(), direct.density.to_bits());

    // Graceful stop: the shutdown op is acknowledged, then the daemon
    // drains and join() returns (a hang here fails the test by timeout).
    let bye = parse_ok(&query(addr, "{\"op\":\"shutdown\"}"));
    assert_eq!(bye.as_object().unwrap().get("shutting_down").unwrap().as_bool(), Some(true));
    server.join();
}

#[test]
fn malformed_frames_and_requests_use_canonical_error_strings() {
    let (server, addr) = undirected_server(ServeConfig::default());

    // Oversized length prefix: rejected before allocation, connection drops.
    let mut stream = TcpStream::connect(addr).unwrap();
    let huge = (protocol::MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
    stream.write_all(&huge).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap().unwrap().unwrap();
    assert_eq!(
        reply,
        protocol::error_response(&protocol::oversized_frame_error(
            protocol::MAX_FRAME_BYTES as u64 + 1
        ))
    );
    assert!(read_frame(&mut stream).unwrap().is_none(), "framing lost: connection must close");

    // Invalid UTF-8 payload in a well-formed frame.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&4u32.to_be_bytes()).unwrap();
    stream.write_all(&[0xff, 0xfe, 0x80, 0x00]).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).unwrap().unwrap().unwrap();
    assert_eq!(reply, protocol::error_response(&protocol::invalid_utf8_error()));

    // Malformed *requests* keep the connection: each canonical error comes
    // back and the same socket then answers a valid query.
    let mut stream = TcpStream::connect(addr).unwrap();
    let expect_err = |stream: &mut TcpStream, payload: &str, want: &str| {
        write_frame(stream, payload).unwrap();
        let got = read_frame(stream).unwrap().unwrap().unwrap();
        assert_eq!(got, protocol::error_response(want), "payload {payload:?}");
    };
    expect_err(
        &mut stream,
        "nonsense",
        &protocol::invalid_json_error(&json::parse("nonsense").unwrap_err()),
    );
    expect_err(&mut stream, "[1,2]", &protocol::not_an_object_error());
    expect_err(&mut stream, "{\"x\":1}", &protocol::missing_op_error());
    expect_err(&mut stream, "{\"op\":\"dense\"}", &protocol::unknown_op_error("dense"));
    expect_err(
        &mut stream,
        "{\"op\":\"density\",\"vertices\":\"nope\"}",
        &protocol::bad_field_error("density", "vertices", "an array of vertex ids"),
    );
    expect_err(
        &mut stream,
        "{\"op\":\"greedypp\",\"epsilon\":-1}",
        &protocol::bad_field_error("greedypp", "epsilon", "a non-negative number"),
    );
    write_frame(&mut stream, "{\"op\":\"densest\"}").unwrap();
    parse_ok(&read_frame(&mut stream).unwrap().unwrap().unwrap());

    // Out-of-range vertices reuse the GraphError wording byte-for-byte.
    let err = query(addr, "{\"op\":\"density\",\"vertices\":[999]}");
    assert_eq!(err, protocol::error_response(&dsd_serve::query::vertex_range_error(999, 40)));

    server.shutdown();
    server.join();
}

#[test]
fn socket_junk_never_wedges_the_daemon() {
    let (server, addr) = undirected_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let mut x = 0x243f6a8885a308d3u64;
    for round in 0..50 {
        let mut junk = Vec::with_capacity(round % 13);
        for _ in 0..(round % 13) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            junk.push((x >> 56) as u8);
        }
        let mut stream = TcpStream::connect(addr).expect("daemon still accepting");
        let _ = stream.write_all(&junk);
        drop(stream); // abandon mid-frame
    }
    // The daemon survived 50 garbage connections and still answers.
    parse_ok(&query(addr, "{\"op\":\"densest\"}"));
    server.shutdown();
    server.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    // The framer over arbitrary byte soup: must never panic, and every
    // outcome is one of clean EOF, an io error, or a (possibly rejected)
    // frame. Oversized claims must be rejected *before* allocating.
    #[test]
    fn arbitrary_bytes_never_panic_the_framer(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut cursor = bytes.as_slice();
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert!(bytes.len() < 4, "EOF only before a full length prefix"),
            Ok(Some(Ok(payload))) => prop_assert!(payload.len() <= protocol::MAX_FRAME_BYTES),
            Ok(Some(Err(msg))) => prop_assert!(!msg.is_empty()),
            Err(_) => {} // truncated mid-frame
        }
    }

    // Arbitrary UTF-8 payloads through the request parser: never a
    // panic, and failures always carry a canonical non-empty message.
    #[test]
    fn arbitrary_payloads_never_panic_the_parser(payload in ".{0,60}") {
        match protocol::parse_request(&payload) {
            Ok(_) => {}
            Err(msg) => prop_assert!(!msg.is_empty()),
        }
    }
}
