//! Property tests for the zero-allocation sweep engine: the synchronous
//! mode must be bit-identical to the seed collect-per-sweep kernel (core
//! numbers *and* iteration counts), and the asynchronous (Gauss–Seidel)
//! mode's fixpoint must equal the BZ ground-truth core numbers on random
//! and filament-tailed graphs while never needing more sweeps.

use proptest::prelude::*;

use dsd_core::uds::bz::bz_decomposition;
use dsd_core::uds::local::{
    local_decomposition, local_decomposition_async, local_decomposition_frontier,
    local_decomposition_legacy,
};
use dsd_core::uds::pkmc::{pkmc, pkmc_with, PkmcConfig};
use dsd_core::uds::sweep::SweepMode;

/// Random graphs spanning the regimes the engine must handle: uniform,
/// power-law, and power-law with attached filaments (the paper's slow
/// Table-6 convergence regime, where sweeps number in the hundreds).
fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    prop_oneof![
        (2usize..60, 1usize..400, any::<u64>())
            .prop_map(|(n, m, seed)| dsd_graph::gen::erdos_renyi(n, m, seed)),
        (20usize..120, 2.05f64..3.0, any::<u64>())
            .prop_map(|(n, gamma, seed)| { dsd_graph::gen::chung_lu(n, n * 5, gamma, seed) }),
        (20usize..80, 1usize..4, 5usize..40, any::<u64>()).prop_map(|(n, count, length, seed)| {
            let base = dsd_graph::gen::chung_lu(n, n * 4, 2.3, seed);
            dsd_graph::gen::attach_filaments(&base, count, length, seed ^ 0x5eed)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sync_engine_is_bit_identical_to_legacy_kernel(g in undirected_graph()) {
        let legacy = local_decomposition_legacy(&g);
        let engine = local_decomposition(&g);
        prop_assert_eq!(&engine.core, &legacy.core, "core numbers diverged");
        prop_assert_eq!(
            engine.stats.iterations, legacy.stats.iterations,
            "iteration counts diverged"
        );
        let frontier = local_decomposition_frontier(&g);
        prop_assert_eq!(&frontier.core, &legacy.core, "frontier core diverged");
        prop_assert_eq!(frontier.stats.iterations, legacy.stats.iterations);
    }

    #[test]
    fn async_fixpoint_equals_bz_core_numbers(g in undirected_graph()) {
        let bz = bz_decomposition(&g);
        let asynchronous = local_decomposition_async(&g);
        prop_assert_eq!(&asynchronous.core, &bz.core, "async fixpoint is not the core numbers");
        // Gauss–Seidel reads fresher values, so it can never need more
        // sweeps than Jacobi (monotone operator, pointwise-dominated runs).
        let sync = local_decomposition(&g);
        prop_assert!(
            asynchronous.stats.iterations <= sync.stats.iterations,
            "async needed {} sweeps, sync {}",
            asynchronous.stats.iterations, sync.stats.iterations
        );
    }

    #[test]
    fn pkmc_async_ablation_stays_correct(g in undirected_graph()) {
        // The async sweep schedule keeps every PKMC answer certified: the
        // returned set is still exactly the k*-core.
        let bz = bz_decomposition(&g);
        let r = pkmc_with(&g, PkmcConfig { mode: SweepMode::Asynchronous, ..PkmcConfig::new() });
        prop_assert_eq!(r.k_star, bz.k_star, "k* mismatch under async sweeps");
        let mut expected = bz.k_star_core();
        expected.sort_unstable();
        prop_assert_eq!(r.vertices, expected, "k*-core mismatch under async sweeps");
    }

    #[test]
    fn pkmc_engine_iterations_match_seed_semantics(g in undirected_graph()) {
        // PKMC through the engine must behave like the seed: never more
        // sweeps than full Local convergence (+1 for the stop check).
        let local = local_decomposition(&g);
        let r = pkmc(&g);
        prop_assert!(
            r.stats.iterations <= local.stats.iterations + 1,
            "pkmc {} vs local {}", r.stats.iterations, local.stats.iterations
        );
    }
}
