//! Cross-crate integration tests: sampling feeding algorithms, IO round
//! trips through the solvers, thread-pool control, and CLI smoke tests.

use std::io::Write;
use std::process::Command;

use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

#[test]
fn sampled_subgraphs_remain_solvable_and_monotone_in_size() {
    let g = dsd_graph::gen::chung_lu(2_000, 16_000, 2.2, 5);
    let mut prev_edges = 0usize;
    for &fraction in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let s = dsd_graph::sample::sample_edges_undirected(&g, fraction, 9).unwrap();
        assert!(s.num_edges() >= prev_edges, "sampling not monotone");
        prev_edges = s.num_edges();
        let r = run_uds(&s, UdsAlgorithm::Pkmc);
        if s.num_edges() > 0 {
            assert!(r.density > 0.0);
        }
    }
}

#[test]
fn io_round_trip_preserves_algorithm_results() {
    let g = dsd_graph::gen::erdos_renyi(200, 900, 33);
    let mut buf = Vec::new();
    dsd_graph::io::write_undirected(&g, &mut buf).unwrap();
    let g2 = dsd_graph::io::read_undirected(buf.as_slice()).unwrap();
    let a = run_uds(&g, UdsAlgorithm::Pkmc);
    let b = run_uds(&g2, UdsAlgorithm::Pkmc);
    assert_eq!(a.vertices, b.vertices);
    assert_eq!(a.density, b.density);
}

#[test]
fn thread_pool_sizes_give_identical_results() {
    // Determinism across pool sizes: the Jacobi h-index iteration and the
    // phase-structured peels must not depend on scheduling.
    let g = dsd_graph::gen::chung_lu(1_000, 8_000, 2.3, 44);
    let d = dsd_graph::gen::chung_lu_directed(300, 2_400, 2.4, 2.2, 44);
    let uds1 = dsd_core::runner::with_threads(1, || run_uds(&g, UdsAlgorithm::Pkmc));
    let uds4 = dsd_core::runner::with_threads(4, || run_uds(&g, UdsAlgorithm::Pkmc));
    assert_eq!(uds1.vertices, uds4.vertices);
    let dds1 = dsd_core::runner::with_threads(1, || run_dds(&d, DdsAlgorithm::Pwc));
    let dds4 = dsd_core::runner::with_threads(4, || run_dds(&d, DdsAlgorithm::Pwc));
    assert_eq!(dds1.s, dds4.s);
    assert_eq!(dds1.t, dds4.t);
}

#[test]
fn sweep_engine_deterministic_across_pool_sizes() {
    // The engine's acceptance contract: synchronous sweeps are
    // bit-identical to the seed collect-per-sweep kernel — same core
    // numbers AND same iteration counts — at every pool size, for both
    // the full (faithful Algorithm 1) and frontier schedules; PKMC
    // through the engine returns identical sweeps and vertex sets; the
    // async mode reaches the same fixpoint at every pool size (its
    // iteration count is scheduling-dependent by design).
    use dsd_core::runner::with_threads;
    use dsd_core::uds::local::{
        local_decomposition, local_decomposition_async, local_decomposition_frontier,
        local_decomposition_legacy,
    };
    use dsd_core::uds::pkmc::pkmc;

    let base = dsd_graph::gen::chung_lu(800, 6_000, 2.3, 11);
    let g = dsd_graph::gen::attach_filaments(&base, 3, 60, 12);
    let reference = local_decomposition_legacy(&g);
    let pkmc_reference = pkmc(&g);
    for &p in &[1usize, 2, 4] {
        let full = with_threads(p, || local_decomposition(&g));
        assert_eq!(full.core, reference.core, "pool {p}: core numbers");
        assert_eq!(full.stats.iterations, reference.stats.iterations, "pool {p}: iteration count");
        let frontier = with_threads(p, || local_decomposition_frontier(&g));
        assert_eq!(frontier.core, reference.core, "pool {p}: frontier core");
        assert_eq!(
            frontier.stats.iterations, reference.stats.iterations,
            "pool {p}: frontier iterations"
        );
        let asynchronous = with_threads(p, || local_decomposition_async(&g));
        assert_eq!(asynchronous.core, reference.core, "pool {p}: async fixpoint");
        let r = with_threads(p, || pkmc(&g));
        assert_eq!(r.vertices, pkmc_reference.vertices, "pool {p}: pkmc vertices");
        assert_eq!(r.stats.iterations, pkmc_reference.stats.iterations, "pool {p}: pkmc sweeps");
    }
}

#[test]
fn w_star_decomposition_deterministic_across_pool_sizes() {
    // The DDS peeling engine's acceptance contract: induce-numbers, w*,
    // and the w*-subgraph are bit-identical to the legacy Algorithm 3
    // kernel at every pool size, for both the full and the warm-started
    // decomposition. Inner round counts are schedule-dependent in both
    // kernels and are not part of the contract.
    use dsd_core::dds::peel::PeelWorkspace;
    use dsd_core::dds::winduced::{
        w_decomposition_in, w_decomposition_legacy, w_star_decomposition_in,
        w_star_decomposition_legacy,
    };
    use dsd_core::runner::with_threads;

    let base = dsd_graph::gen::chung_lu_directed(400, 3_200, 2.3, 2.1, 13);
    let g = dsd_graph::gen::attach_filaments_directed(&base, 3, 80, 14);
    let full_reference = w_decomposition_legacy(&g);
    let warm_reference = w_star_decomposition_legacy(&g);
    for &p in &[1usize, 2, 4] {
        let full = with_threads(p, || w_decomposition_in(&g, &mut PeelWorkspace::new()));
        assert_eq!(full.induce_number, full_reference.induce_number, "pool {p}: induce-numbers");
        assert_eq!(full.w_star, full_reference.w_star, "pool {p}: w*");
        assert_eq!(full.w_star_edges(&g), full_reference.w_star_edges(&g), "pool {p}: w* edges");
        let warm = with_threads(p, || w_star_decomposition_in(&g, &mut PeelWorkspace::new()));
        assert_eq!(warm.induce_number, warm_reference.induce_number, "pool {p}: warm induce");
        assert_eq!(warm.w_star, warm_reference.w_star, "pool {p}: warm w*");
        assert_eq!(warm.w_star_edges(&g), warm_reference.w_star_edges(&g), "pool {p}: warm edges");
    }
}

#[test]
fn pwc_deterministic_across_pool_sizes() {
    // PWC end-to-end (engine-backed Algorithm 3, collapse testing, and the
    // parallel [x, y]-core extraction) must return the identical answer at
    // every pool size.
    use dsd_core::dds::pwc::pwc;
    use dsd_core::runner::with_threads;

    let g = dsd_graph::gen::chung_lu_directed(500, 4_000, 2.4, 2.1, 77);
    let reference = pwc(&g);
    for &p in &[1usize, 2, 4] {
        let r = with_threads(p, || pwc(&g));
        assert_eq!(r.result.s, reference.result.s, "pool {p}: S side");
        assert_eq!(r.result.t, reference.result.t, "pool {p}: T side");
        assert_eq!(r.cn_pair, reference.cn_pair, "pool {p}: cn-pair");
        assert_eq!(r.w_star, reference.w_star, "pool {p}: w*");
        assert_eq!(r.used_fallback, reference.used_fallback, "pool {p}: fallback flag");
    }
}

#[test]
fn pkc_deterministic_across_pool_sizes() {
    // PKC's in-place claim-and-kill rounds depend only on round-start
    // state, so its results and round counts are pool-size independent.
    use dsd_core::runner::with_threads;
    use dsd_core::uds::pkc::pkc_decomposition;

    let g = dsd_graph::gen::chung_lu(700, 4_200, 2.4, 21);
    let reference = pkc_decomposition(&g);
    for &p in &[1usize, 2, 4] {
        let d = with_threads(p, || pkc_decomposition(&g));
        assert_eq!(d.core, reference.core, "pool {p}");
        assert_eq!(d.stats.iterations, reference.stats.iterations, "pool {p}");
    }
}

#[test]
fn telemetry_recorder_parity_with_recorder_disabled() {
    // PR-3 contract: flipping the recorder on must not change any answer.
    // Every probe site (round sampling, examined scans, counters, span
    // timers) runs in the enabled pass, and each decomposition's result is
    // compared bit-for-bit with the recorder-off pass. Only return values
    // are asserted — the recorder is process-global and this binary's
    // tests run concurrently, so trace *contents* could interleave; the
    // exact per-round and counter assertions live in
    // `tests/telemetry_trace.rs`, which is its own process.
    use dsd_core::dds::pwc::pwc;
    use dsd_core::uds::local::local_decomposition;
    use dsd_core::uds::pkc::pkc_decomposition;
    use dsd_core::uds::pkmc::pkmc;

    let base = dsd_graph::gen::chung_lu(900, 7_000, 2.3, 51);
    let g = dsd_graph::gen::attach_filaments(&base, 3, 70, 52);
    let d = dsd_graph::gen::chung_lu_directed(350, 2_800, 2.4, 2.1, 53);

    dsd_telemetry::set_enabled(false);
    let local_off = local_decomposition(&g);
    let pkmc_off = pkmc(&g);
    let pkc_off = pkc_decomposition(&g);
    let pwc_off = pwc(&d);

    dsd_telemetry::set_enabled(true);
    dsd_telemetry::begin_trace("cross_crate/recorder_parity");
    let local_on = local_decomposition(&g);
    let pkmc_on = pkmc(&g);
    let pkc_on = pkc_decomposition(&g);
    let pwc_on = pwc(&d);
    let trace = dsd_telemetry::end_trace().expect("recorder is enabled");
    dsd_telemetry::set_enabled(false);

    assert_eq!(local_on.core, local_off.core, "local core numbers");
    assert_eq!(local_on.stats.iterations, local_off.stats.iterations, "local iterations");
    assert_eq!(pkmc_on.vertices, pkmc_off.vertices, "pkmc vertex set");
    assert_eq!(pkmc_on.density, pkmc_off.density, "pkmc density");
    assert_eq!(pkmc_on.stats.iterations, pkmc_off.stats.iterations, "pkmc sweeps");
    assert_eq!(pkc_on.core, pkc_off.core, "pkc core numbers");
    assert_eq!(pkc_on.stats.iterations, pkc_off.stats.iterations, "pkc rounds");
    assert_eq!(pwc_on.result.s, pwc_off.result.s, "pwc S side");
    assert_eq!(pwc_on.result.t, pwc_off.result.t, "pwc T side");
    assert_eq!(pwc_on.w_star, pwc_off.w_star, "pwc w*");
    assert_eq!(pwc_on.result.stats.edges_last_iter, pwc_off.result.stats.edges_last_iter);
    assert!(!trace.rounds.is_empty(), "instrumented engines recorded rounds");
}

#[test]
fn ingest_engine_deterministic_across_pool_sizes() {
    // PR-4 contract: the counting-sort builder, the chunked parallel
    // parser, and the direct CSR reorder produce bit-identical output at
    // every pool size. The single-threaded legacy paths are the reference,
    // so this also re-checks engine-vs-oracle parity end to end.
    use dsd_core::runner::with_threads;

    let g = dsd_graph::gen::chung_lu(2_000, 18_000, 2.3, 61);
    let d = dsd_graph::gen::chung_lu_directed(900, 8_000, 2.3, 2.1, 62);
    let undirected_edges: Vec<(u32, u32)> = g.edges().collect();
    let directed_edges: Vec<(u32, u32)> = d.edges().collect();
    let mut text = Vec::new();
    dsd_graph::io::write_undirected(&g, &mut text).unwrap();
    let mut dtext = Vec::new();
    dsd_graph::io::write_directed(&d, &mut dtext).unwrap();

    let built_reference = dsd_graph::UndirectedGraphBuilder::new(2_000)
        .add_edges(undirected_edges.iter().copied())
        .build_legacy()
        .unwrap();
    let dbuilt_reference = dsd_graph::DirectedGraphBuilder::new(900)
        .add_edges(directed_edges.iter().copied())
        .build_legacy()
        .unwrap();
    let parsed_reference = dsd_graph::io::read_undirected_serial(text.as_slice()).unwrap();
    let dparsed_reference = dsd_graph::io::read_directed_serial(dtext.as_slice()).unwrap();
    let reordered_reference = dsd_graph::reorder::by_degree_descending_legacy(&g);

    for &p in &[1usize, 2, 4] {
        let built = with_threads(p, || {
            dsd_graph::UndirectedGraphBuilder::new(2_000)
                .add_edges(undirected_edges.iter().copied())
                .build()
                .unwrap()
        });
        assert_eq!(built, built_reference, "pool {p}: undirected build");
        let dbuilt = with_threads(p, || {
            dsd_graph::DirectedGraphBuilder::new(900)
                .add_edges(directed_edges.iter().copied())
                .build()
                .unwrap()
        });
        assert_eq!(dbuilt, dbuilt_reference, "pool {p}: directed build");
        let parsed = with_threads(p, || dsd_graph::io::read_undirected(text.as_slice()).unwrap());
        assert_eq!(parsed, parsed_reference, "pool {p}: undirected parse");
        let dparsed = with_threads(p, || dsd_graph::io::read_directed(dtext.as_slice()).unwrap());
        assert_eq!(dparsed, dparsed_reference, "pool {p}: directed parse");
        let reordered = with_threads(p, || dsd_graph::reorder::by_degree_descending(&g));
        assert_eq!(reordered.graph, reordered_reference.graph, "pool {p}: reorder graph");
        assert_eq!(reordered.original, reordered_reference.original, "pool {p}: reorder order");
        let rd = with_threads(p, || dsd_graph::reorder::by_degree_descending_directed(&d));
        let rd1 = with_threads(1, || dsd_graph::reorder::by_degree_descending_directed(&d));
        assert_eq!(rd.graph, rd1.graph, "pool {p}: directed reorder");
        assert_eq!(rd.original, rd1.original, "pool {p}: directed reorder order");
    }
}

#[test]
fn parallel_parser_reports_exact_error_line_in_deep_chunk() {
    // A malformed line buried deep inside a non-first parser chunk must
    // surface with the same 1-based global line number and message the
    // serial parser reports. ~1.2 MiB of input guarantees several chunks
    // (MIN_CHUNK_BYTES is 64 KiB), and the bad line lands past the 80%
    // mark, far from chunk 0.
    let mut text = String::new();
    let mut bad_line = 0usize;
    let mut lineno = 0usize;
    for i in 0..160_000u32 {
        lineno += 1;
        if i % 1_000 == 0 {
            text.push_str("# synthetic comment to vary line lengths\n");
            lineno += 1;
        }
        if i == 130_000 {
            text.push_str("4242 not_a_number\n");
            bad_line = lineno;
            continue;
        }
        text.push_str(&format!("{} {}\n", i % 997, (i * 7 + 1) % 997));
    }
    assert!(text.len() > 1 << 20, "input must span several chunks");

    let serial = dsd_graph::io::read_undirected_serial(text.as_bytes()).unwrap_err();
    let parallel = dsd_graph::io::read_undirected(text.as_bytes()).unwrap_err();
    let (serial_line, serial_msg) = match serial {
        dsd_graph::GraphError::Parse { line, message } => (line, message),
        other => panic!("serial: expected parse error, got {other}"),
    };
    assert_eq!(serial_line, bad_line, "serial parser disagrees with the generator");
    assert!(serial_msg.contains("bad target"), "{serial_msg}");
    match parallel {
        dsd_graph::GraphError::Parse { line, message } => {
            assert_eq!(line, serial_line, "parallel parser line number");
            assert_eq!(message, serial_msg, "parallel parser message");
        }
        other => panic!("parallel: expected parse error, got {other}"),
    }

    // Same contract under explicit pool sizes (chunk count scales with the
    // pool, moving the chunk boundaries around the bad line).
    for &p in &[1usize, 2, 4] {
        let err = dsd_core::runner::with_threads(p, || {
            dsd_graph::io::read_undirected(text.as_bytes()).unwrap_err()
        });
        match err {
            dsd_graph::GraphError::Parse { line, message } => {
                assert_eq!(line, serial_line, "pool {p}: line number");
                assert_eq!(message, serial_msg, "pool {p}: message");
            }
            other => panic!("pool {p}: expected parse error, got {other}"),
        }
    }
}

#[test]
fn connected_component_of_core_is_valid_answer() {
    // The paper: the k*-core may have several components, any of which is a
    // 2-approximation. Check the density bound holds for the best one.
    let g = dsd_graph::gen::erdos_renyi(60, 250, 71);
    let exact = run_uds(&g, UdsAlgorithm::Exact).density;
    let r = run_uds(&g, UdsAlgorithm::Pkmc);
    let sub = dsd_graph::subgraph::induce_undirected(&g, &r.vertices);
    let comps = dsd_graph::components::connected_components(&sub.graph);
    let best = comps
        .groups()
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|c| {
            let original: Vec<u32> = c.iter().map(|&v| sub.original[v as usize]).collect();
            dsd_core::density::undirected_density(&g, &original)
        })
        .fold(0.0f64, f64::max);
    assert!(best * 2.0 + 1e-9 >= exact, "best component {best} vs exact {exact}");
}

fn dsd_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsd"))
}

#[test]
fn cli_gen_stats_and_solve() {
    let dir = std::env::temp_dir().join(format!("dsd_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.txt");
    let out = dsd_bin()
        .args(["gen", "--model", "chung-lu", "--n", "500", "--m", "3000", "--seed", "7", "--out"])
        .arg(&path)
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));

    let out = dsd_bin().args(["stats", "--input"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("|V|=500"), "stats output: {text}");

    let out = dsd_bin()
        .args(["uds", "--algo", "pkmc", "--threads", "2", "--input"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "uds failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("density:"), "uds output: {text}");
}

#[test]
fn cli_dds_on_edge_list() {
    let dir = std::env::temp_dir().join(format!("dsd_cli_dds_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("d.txt");
    let mut f = std::fs::File::create(&path).unwrap();
    // 2x3 block: S = {0,1}, T = {2,3,4}.
    for u in 0..2 {
        for t in 2..5 {
            writeln!(f, "{u} {t}").unwrap();
        }
    }
    drop(f);
    let out = dsd_bin()
        .args(["dds", "--algo", "pwc", "--print-vertices", "--input"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success(), "dds failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("S: [0, 1]"), "dds output: {text}");
    assert!(text.contains("T: [2, 3, 4]"), "dds output: {text}");
}

#[test]
fn cli_rejects_unknown_algorithm() {
    let out =
        dsd_bin().args(["uds", "--input", "/nonexistent", "--algo", "bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_decompose_core_and_truss() {
    let dir = std::env::temp_dir().join(format!("dsd_cli_decomp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("g.txt");
    let mut f = std::fs::File::create(&input).unwrap();
    // Triangle + pendant.
    for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
        writeln!(f, "{u} {v}").unwrap();
    }
    drop(f);
    let core_out = dir.join("core.txt");
    let out = dsd_bin()
        .args(["decompose", "--what", "core", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&core_out)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&core_out).unwrap();
    assert!(text.contains("k* = 2"), "core output: {text}");
    assert!(text.contains("3 1"), "pendant vertex core number: {text}");

    let truss_out = dir.join("truss.txt");
    let out = dsd_bin()
        .args(["decompose", "--what", "truss", "--input"])
        .arg(&input)
        .arg("--out")
        .arg(&truss_out)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&truss_out).unwrap();
    assert!(text.contains("k_max = 3"), "truss output: {text}");
}

#[test]
fn refined_component_keeps_guarantee() {
    let g = dsd_graph::gen::erdos_renyi(60, 220, 99);
    let exact = run_uds(&g, UdsAlgorithm::Exact).density;
    let r = run_uds(&g, UdsAlgorithm::Pkmc);
    let (comp, density) = dsd_core::refine::densest_component(&g, &r.vertices);
    assert!(!comp.is_empty());
    assert!(density + 1e-9 >= r.density);
    assert!(density * 2.0 + 1e-9 >= exact);
}
