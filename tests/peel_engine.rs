//! Property tests for the DDS edge-frontier peeling engine: induce-numbers
//! and `w*` must be bit-identical to the legacy Algorithm 3 kernel and to
//! a textbook serial single-edge peeling on random, power-law, and
//! filament-tailed directed graphs, with or without the `d_max` warm
//! start. Inner round counts are schedule-dependent in both kernels and
//! are deliberately NOT compared (see `dds::peel`'s determinism contract).

use proptest::prelude::*;

use dsd_core::dds::peel::PeelWorkspace;
use dsd_core::dds::winduced::{
    edge_endpoints, w_decomposition, w_decomposition_legacy, w_star_decomposition,
    w_star_decomposition_legacy,
};
use dsd_graph::DirectedGraph;

/// Directed graphs spanning the regimes the engine must handle: uniform,
/// power-law with asymmetric exponents, and power-law with skip-arc
/// filament tails (the long-cascade regime the frontier exists for).
fn directed_graph() -> impl Strategy<Value = DirectedGraph> {
    prop_oneof![
        (2usize..60, 1usize..400, any::<u64>())
            .prop_map(|(n, m, seed)| dsd_graph::gen::erdos_renyi_directed(n, m, seed)),
        (20usize..120, 2.05f64..3.0, 2.05f64..3.0, any::<u64>()).prop_map(
            |(n, gout, gin, seed)| dsd_graph::gen::chung_lu_directed(n, n * 5, gout, gin, seed)
        ),
        (20usize..80, 1usize..4, 5usize..40, any::<u64>()).prop_map(|(n, count, length, seed)| {
            let base = dsd_graph::gen::chung_lu_directed(n, n * 4, 2.3, 2.2, seed);
            dsd_graph::gen::attach_filaments_directed(&base, count, length, seed ^ 0x5eed)
        }),
    ]
}

/// Textbook serial peeling: repeatedly remove a single minimum-weight edge
/// (independent of both parallel kernels; the ground-truth oracle).
fn serial_reference(g: &DirectedGraph) -> (Vec<u64>, u64) {
    let endpoints: Vec<(u32, u32)> = edge_endpoints(g).collect();
    let m = endpoints.len();
    let mut alive = vec![true; m];
    let mut outd: Vec<u64> = g.out_degrees().iter().map(|&d| d as u64).collect();
    let mut ind: Vec<u64> = g.in_degrees().iter().map(|&d| d as u64).collect();
    let mut induce = vec![0u64; m];
    let mut remaining = m;
    let mut current = 0u64;
    while remaining > 0 {
        let (ei, w) = endpoints
            .iter()
            .enumerate()
            .filter(|&(i, _)| alive[i])
            .map(|(i, &(u, v))| (i, outd[u as usize] * ind[v as usize]))
            .min_by_key(|&(_, w)| w)
            .unwrap();
        current = current.max(w);
        induce[ei] = current;
        alive[ei] = false;
        let (u, v) = endpoints[ei];
        outd[u as usize] -= 1;
        ind[v as usize] -= 1;
        remaining -= 1;
    }
    (induce, current)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_is_bit_identical_to_legacy_kernel(g in directed_graph()) {
        let legacy = w_decomposition_legacy(&g);
        let engine = w_decomposition(&g);
        prop_assert_eq!(&engine.induce_number, &legacy.induce_number, "induce-numbers diverged");
        prop_assert_eq!(engine.w_star, legacy.w_star, "w* diverged");
        prop_assert_eq!(engine.w_star_edges(&g), legacy.w_star_edges(&g), "w*-subgraph diverged");
    }

    #[test]
    fn engine_matches_serial_single_edge_peeling(g in directed_graph()) {
        let (induce, w_star) = serial_reference(&g);
        let engine = w_decomposition(&g);
        prop_assert_eq!(&engine.induce_number, &induce, "induce-numbers diverged from oracle");
        prop_assert_eq!(engine.w_star, w_star, "w* diverged from oracle");
    }

    #[test]
    fn warm_start_engine_matches_legacy_warm_start(g in directed_graph()) {
        let legacy = w_star_decomposition_legacy(&g);
        let engine = w_star_decomposition(&g);
        prop_assert_eq!(&engine.induce_number, &legacy.induce_number, "warm induce diverged");
        prop_assert_eq!(engine.w_star, legacy.w_star, "warm w* diverged");
        prop_assert_eq!(engine.w_star_edges(&g), legacy.w_star_edges(&g));
    }

    #[test]
    fn workspace_reuse_does_not_leak_state(g in directed_graph()) {
        // A workspace that just decomposed a different graph must give the
        // same answers as a fresh one.
        let mut ws = PeelWorkspace::new();
        let other = dsd_graph::gen::erdos_renyi_directed(30, 120, 0xDECAF);
        ws.decompose(&other, true);
        let reused = ws.decompose(&g, false);
        let fresh = w_decomposition(&g);
        prop_assert_eq!(&reused.induce_number, &fresh.induce_number, "stale workspace state");
        prop_assert_eq!(reused.w_star, fresh.w_star);
    }
}
