//! Differential property tests for the incremental decomposition engine
//! (`dsd_core::dynamic`): on random base graphs with random insert/delete
//! batches, the frontier-bounded batch update must be **bit-identical**
//! to from-scratch recomputation on the updated graph — for both graph
//! kinds, at thread pools {1, 2, 4}, and from either storage
//! representation (plain CSR and compressed delta-varint).

use proptest::prelude::*;

use dsd_core::dynamic::{
    scratch_directed, scratch_undirected, DynamicDirectedState, DynamicUndirectedState,
};
use dsd_core::runner::with_threads;
use dsd_graph::compress::{DirectedStorage, UndirectedStorage};
use dsd_graph::delta::{apply_directed, apply_undirected, DeltaBatch};
use dsd_graph::{DirectedGraph, UndirectedGraph, VertexId};

fn cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default_cases)
}

/// Splitmix-style step for deterministic churn sampling.
fn next(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x >> 11
}

/// Deterministic churn batch against an undirected base: up to `n_rem`
/// distinct existing edges removed, up to `n_ins` distinct absent pairs
/// inserted. `None` when the batch would be empty (rejected by
/// `DeltaBatch::new`).
fn churn_undirected(
    g: &UndirectedGraph,
    seed: u64,
    n_ins: usize,
    n_rem: usize,
) -> Option<DeltaBatch> {
    let n = g.num_vertices() as u64;
    let edges: Vec<_> = g.edges().collect();
    let mut x = seed | 1;
    let mut removes = Vec::new();
    if !edges.is_empty() {
        let mut i = (next(&mut x) as usize) % edges.len();
        while removes.len() < n_rem.min(edges.len()) {
            let e = edges[i % edges.len()];
            if !removes.contains(&e) {
                removes.push(e);
            }
            i += 1;
        }
    }
    let mut inserts = Vec::new();
    let mut tries = 0;
    while inserts.len() < n_ins && tries < 400 {
        tries += 1;
        let u = (next(&mut x) % n) as VertexId;
        let v = (next(&mut x) % n) as VertexId;
        let (a, b) = (u.min(v), u.max(v));
        if a == b || g.has_edge(a, b) || inserts.contains(&(a, b)) {
            continue;
        }
        inserts.push((a, b));
    }
    DeltaBatch::new(inserts, removes).ok()
}

/// Directed counterpart of [`churn_undirected`]; arcs keep orientation.
fn churn_directed(g: &DirectedGraph, seed: u64, n_ins: usize, n_rem: usize) -> Option<DeltaBatch> {
    let n = g.num_vertices() as u64;
    let edges: Vec<_> = g.edges().collect();
    let mut x = seed | 1;
    let mut removes = Vec::new();
    if !edges.is_empty() {
        let mut i = (next(&mut x) as usize) % edges.len();
        while removes.len() < n_rem.min(edges.len()) {
            let e = edges[i % edges.len()];
            if !removes.contains(&e) {
                removes.push(e);
            }
            i += 1;
        }
    }
    let mut inserts = Vec::new();
    let mut tries = 0;
    while inserts.len() < n_ins && tries < 400 {
        tries += 1;
        let u = (next(&mut x) % n) as VertexId;
        let v = (next(&mut x) % n) as VertexId;
        if u == v || g.has_edge(u, v) || inserts.contains(&(u, v)) {
            continue;
        }
        inserts.push((u, v));
    }
    DeltaBatch::new(inserts, removes).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    #[test]
    fn undirected_batch_bit_identical_to_scratch_at_all_pools(
        n in 8usize..60,
        m in 20usize..300,
        seed in any::<u64>(),
        n_ins in 0usize..8,
        n_rem in 0usize..8,
    ) {
        let g = dsd_graph::gen::erdos_renyi(n, m, seed);
        let Some(batch) = churn_undirected(&g, seed, n_ins, n_rem) else {
            return Ok(());
        };
        let updated = apply_undirected(&g, &batch).unwrap();
        let oracle = scratch_undirected(&updated);
        for pool in [1usize, 2, 4] {
            let core = with_threads(pool, || {
                let mut st = DynamicUndirectedState::new(g.clone());
                st.apply_batch(&batch).unwrap();
                st.core_numbers().to_vec()
            });
            prop_assert_eq!(
                &core, &oracle,
                "pool {} diverged from scratch", pool
            );
        }
        // Same result when the state starts from compressed storage.
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        let mut st =
            DynamicUndirectedState::from_storage(&UndirectedStorage::Compressed(&c));
        st.apply_batch(&batch).unwrap();
        prop_assert_eq!(st.core_numbers(), oracle.as_slice());
    }

    #[test]
    fn directed_batch_bit_identical_to_scratch_at_all_pools(
        n in 6usize..45,
        m in 15usize..220,
        seed in any::<u64>(),
        n_ins in 0usize..7,
        n_rem in 0usize..7,
    ) {
        let g = dsd_graph::gen::erdos_renyi_directed(n, m, seed);
        let Some(batch) = churn_directed(&g, seed, n_ins, n_rem) else {
            return Ok(());
        };
        let updated = apply_directed(&g, &batch).unwrap();
        let oracle = scratch_directed(&updated);
        for pool in [1usize, 2, 4] {
            let (induce, w_star) = with_threads(pool, || {
                let mut st = DynamicDirectedState::new(g.clone());
                st.apply_batch(&batch).unwrap();
                (st.induce_numbers().to_vec(), st.w_star())
            });
            prop_assert_eq!(
                &induce, &oracle.induce_number,
                "pool {} diverged from scratch", pool
            );
            prop_assert_eq!(w_star, oracle.w_star);
        }
        let c = dsd_graph::CompressedDigraph::from_graph(&g);
        let mut st = DynamicDirectedState::from_storage(&DirectedStorage::Compressed(&c));
        st.apply_batch(&batch).unwrap();
        prop_assert_eq!(st.induce_numbers(), oracle.induce_number.as_slice());
        prop_assert_eq!(st.w_star(), oracle.w_star);
    }

    #[test]
    fn sequential_batches_remain_exact(
        n in 10usize..50,
        m in 25usize..200,
        seed in any::<u64>(),
    ) {
        // Chained updates: each batch applies to the previous version, so
        // any drift compounds — three rounds with per-round oracles pin
        // that the maintained state never detaches from the true fixed
        // point.
        let mut g = dsd_graph::gen::chung_lu(n, m, 2.3, seed);
        let mut u_state = DynamicUndirectedState::new(g.clone());
        for round in 0..3u64 {
            let Some(batch) = churn_undirected(&g, seed ^ (round + 1), 3, 3) else {
                continue;
            };
            u_state.apply_batch(&batch).unwrap();
            g = apply_undirected(&g, &batch).unwrap();
            let oracle = scratch_undirected(&g);
            prop_assert_eq!(u_state.core_numbers(), oracle.as_slice());
        }
    }

    #[test]
    fn warm_started_dual_bound_brackets_new_optimum(
        n in 8usize..26,
        m in 12usize..80,
        seed in any::<u64>(),
    ) {
        use dsd_core::uds::iterate::{
            greedy_pp, greedy_pp_warm, CertifyMode, IterateConfig,
        };
        let g = dsd_graph::gen::erdos_renyi(n, m, seed);
        if g.num_edges() == 0 {
            return Ok(());
        }
        let cfg = IterateConfig { iterations: 12, epsilon: 0.001, certify: CertifyMode::Dual };
        let cold = greedy_pp(&g, &cfg);
        let Some(batch) = churn_undirected(&g, seed ^ 0xdead, 3, 3) else {
            return Ok(());
        };
        let g2 = apply_undirected(&g, &batch).unwrap();
        if g2.num_edges() == 0 {
            return Ok(());
        }
        let warm = greedy_pp_warm(&g2, &cfg, Some(&cold.loads));
        let exact = greedy_pp(
            &g2,
            &IterateConfig { iterations: 12, epsilon: 0.0, certify: CertifyMode::Exact },
        );
        // The reseeded run's dual bound must still bracket the *new*
        // graph's optimum — the bound is taken over this run's load
        // deltas only, so prior mass cannot deflate it.
        prop_assert!(
            warm.upper_bound >= exact.result.density - 1e-9,
            "warm bound {} < optimum {}", warm.upper_bound, exact.result.density
        );
        prop_assert!(warm.result.density <= warm.upper_bound + 1e-9);
    }
}
