//! Snapshot isolation for the `dsd serve` daemon (PR 10 tentpole):
//! concurrent readers hammering queries while the writer applies
//! `DeltaBatch` updates must only ever observe whole snapshot versions —
//! every response's payload must match the from-scratch answer for
//! exactly the version it claims, versions are monotone per connection,
//! and post-update answers are bit-identical to one-shot decompositions
//! of the mutated graph at thread pools {1, 2, 4}.

use std::collections::{BTreeSet, HashMap};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dsd_core::dynamic::DynamicState;
use dsd_core::runner::with_threads;
use dsd_core::uds::iterate::{CertifyMode, IterateConfig};
use dsd_graph::gen::erdos_renyi;
use dsd_graph::{UndirectedGraph, UndirectedGraphBuilder};
use dsd_serve::protocol::{read_frame, write_frame};
use dsd_serve::{ServeConfig, Server};
use dsd_telemetry::json::{self, Value};

const N: usize = 60;

fn graph_from(edges: &BTreeSet<(u32, u32)>) -> UndirectedGraph {
    UndirectedGraphBuilder::with_capacity(N, edges.len())
        .add_edges(edges.iter().copied().collect::<Vec<_>>())
        .build()
        .expect("edge set is valid")
}

/// What a whole snapshot version must answer: densest density (bits) and
/// vertex set, `k*`, the full core vector, and the edge count.
#[derive(Clone)]
struct VersionOracle {
    density_bits: u64,
    densest: Vec<u64>,
    k_star: u64,
    core: Vec<u32>,
    edges: usize,
}

fn oracle_for(edges: &BTreeSet<(u32, u32)>, pool: usize) -> VersionOracle {
    let g = graph_from(edges);
    let (r, d) = with_threads(pool, || {
        let r: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&g).into();
        (r, dsd_core::uds::bz::bz_decomposition(&g))
    });
    let mut densest: Vec<u64> = r.vertices.iter().map(|&v| v as u64).collect();
    densest.sort_unstable();
    VersionOracle {
        density_bits: r.density.to_bits(),
        densest,
        k_star: d.k_star as u64,
        core: d.core,
        edges: edges.len(),
    }
}

/// Deterministic churn: drop the first `removes` edges of the set and add
/// the first `inserts` absent pairs in lexicographic order.
fn next_batch(
    edges: &mut BTreeSet<(u32, u32)>,
    inserts: usize,
    removes: usize,
) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
    let rem: Vec<(u32, u32)> = edges.iter().take(removes).copied().collect();
    let mut ins = Vec::new();
    'outer: for u in 0..N as u32 {
        for v in (u + 1)..N as u32 {
            // Pairs must be absent from the *pre-batch* graph: re-adding a
            // just-removed edge would make the batch self-conflicting.
            if !edges.contains(&(u, v)) {
                ins.push((u, v));
                if ins.len() == inserts {
                    break 'outer;
                }
            }
        }
    }
    for e in &rem {
        edges.remove(e);
    }
    for e in &ins {
        edges.insert(*e);
    }
    (ins, rem)
}

fn send(stream: &mut TcpStream, payload: &str) -> Value {
    write_frame(stream, payload).expect("send");
    let response =
        read_frame(stream).expect("read").expect("connection open").expect("well-formed frame");
    json::parse(&response).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn field_u64(v: &Value, key: &str) -> u64 {
    v.as_object().unwrap().get(key).unwrap().as_u64().unwrap()
}

fn check_densest(v: &Value, oracles: &HashMap<u64, VersionOracle>) -> u64 {
    let version = field_u64(v, "version");
    let want = oracles.get(&version).unwrap_or_else(|| panic!("unknown version {version}"));
    let obj = v.as_object().unwrap();
    assert_eq!(
        obj.get("density").unwrap().as_f64().unwrap().to_bits(),
        want.density_bits,
        "version {version}: density not from this snapshot"
    );
    let got: Vec<u64> = obj
        .get("vertices")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_u64().unwrap())
        .collect();
    assert_eq!(got, want.densest, "version {version}: vertex set not from this snapshot");
    version
}

fn check_core(v: &Value, probe: &[u32], oracles: &HashMap<u64, VersionOracle>) -> u64 {
    let version = field_u64(v, "version");
    let want = oracles.get(&version).unwrap_or_else(|| panic!("unknown version {version}"));
    assert_eq!(field_u64(v, "k_star"), want.k_star, "version {version}: torn k*");
    let cores = v.as_object().unwrap().get("cores").unwrap().as_array().unwrap();
    assert_eq!(cores.len(), probe.len());
    for (c, &vertex) in cores.iter().zip(probe) {
        assert_eq!(field_u64(c, "vertex"), vertex as u64);
        assert_eq!(
            field_u64(c, "core"),
            want.core[vertex as usize] as u64,
            "version {version}: core number not from this snapshot"
        );
    }
    version
}

/// N readers on keep-alive connections vs the writer applying batches:
/// every response must be internally consistent with exactly one
/// installed version, and versions never run backwards on a connection.
#[test]
fn readers_never_observe_torn_snapshots() {
    const BATCHES: usize = 5;
    const READERS: usize = 3;
    let probe: Vec<u32> = vec![0, 7, 19, 42, 59];

    let g0 = erdos_renyi(N, 220, 13);
    let mut edges: BTreeSet<(u32, u32)> = g0.edges().collect();
    let mut oracles = HashMap::new();
    oracles.insert(1u64, oracle_for(&edges, 1));
    let mut batches = Vec::new();
    let mut working = edges.clone();
    for b in 0..BATCHES {
        let batch = next_batch(&mut working, 3, 3);
        oracles.insert(b as u64 + 2, oracle_for(&working, 1));
        batches.push(batch);
    }
    edges = working;

    let server = Server::start_tcp(
        DynamicState::new_undirected(g0),
        "127.0.0.1:0",
        ServeConfig { workers: 2, pool_threads: 1, record: false },
    )
    .expect("bind loopback");
    let addr = server.local_addr().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let oracles = Arc::new(oracles);
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let oracles = Arc::clone(&oracles);
            let probe = probe.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let core_req = format!(
                    "{{\"op\":\"core\",\"vertices\":[{}]}}",
                    probe.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
                );
                let mut last = 0u64;
                let mut observed = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let v1 = check_densest(&send(&mut stream, "{\"op\":\"densest\"}"), &oracles);
                    let v2 = check_core(&send(&mut stream, &core_req), &probe, &oracles);
                    assert!(v1 >= last, "version ran backwards: {last} -> {v1}");
                    assert!(v2 >= v1, "version ran backwards: {v1} -> {v2}");
                    last = v2;
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    let mut writer = TcpStream::connect(addr).expect("writer connect");
    for (i, (ins, rem)) in batches.iter().enumerate() {
        let fmt = |pairs: &[(u32, u32)]| {
            pairs.iter().map(|(u, v)| format!("[{u},{v}]")).collect::<Vec<_>>().join(",")
        };
        let v = send(
            &mut writer,
            &format!("{{\"op\":\"update\",\"insert\":[{}],\"remove\":[{}]}}", fmt(ins), fmt(rem)),
        );
        assert_eq!(v.as_object().unwrap().get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(field_u64(&v, "version"), i as u64 + 2);
        assert_eq!(field_u64(&v, "edges"), oracles[&(i as u64 + 2)].edges as u64);
        // Let the readers sample this version before the next install.
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        let observed = r.join().expect("reader panicked (torn snapshot?)");
        assert!(observed > 0, "reader never completed a query");
    }

    // The final version answers exactly like a from-scratch build.
    let mut check = TcpStream::connect(addr).unwrap();
    let version = check_densest(&send(&mut check, "{\"op\":\"densest\"}"), &oracles);
    assert_eq!(version, BATCHES as u64 + 1);
    assert_eq!(oracles[&version].edges, edges.len());
    drop(check);
    drop(writer);
    server.shutdown();
    server.join();
}

/// A rejected batch must leave the daemon on the same version with the
/// same answers (the dynamic engines validate before mutating).
#[test]
fn failed_update_changes_nothing() {
    let g0 = erdos_renyi(N, 220, 13);
    let before = {
        let r: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&g0).into();
        r.density.to_bits()
    };
    let server =
        Server::start_tcp(DynamicState::new_undirected(g0), "127.0.0.1:0", ServeConfig::default())
            .expect("bind loopback");
    let addr = server.local_addr().unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();

    // Vertex 999 is out of range: the writer must reject and keep v1.
    let v = send(&mut stream, "{\"op\":\"update\",\"insert\":[[0,999]]}");
    assert_eq!(v.as_object().unwrap().get("ok").unwrap().as_bool(), Some(false));
    let v = send(&mut stream, "{\"op\":\"densest\"}");
    assert_eq!(field_u64(&v, "version"), 1);
    assert_eq!(v.as_object().unwrap().get("density").unwrap().as_f64().unwrap().to_bits(), before);

    server.shutdown();
    server.join();
}

/// Serve answers after an update are bit-identical to one-shot engines on
/// the mutated graph at every pool size in {1, 2, 4} — both the cached
/// densest certificate and a live Greedy++ run.
#[test]
fn post_update_answers_match_one_shot_at_pools_1_2_4() {
    let g0 = erdos_renyi(N, 220, 13);
    let mut edges: BTreeSet<(u32, u32)> = g0.edges().collect();
    let batch = next_batch(&mut edges, 4, 4);
    let updated = graph_from(&edges);
    let cfg = IterateConfig { iterations: 6, epsilon: 0.05, certify: CertifyMode::Dual };

    for pool in [1usize, 2, 4] {
        let server = Server::start_tcp(
            DynamicState::new_undirected(g0.clone()),
            "127.0.0.1:0",
            ServeConfig { workers: 1, pool_threads: pool, record: false },
        )
        .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();

        let fmt = |pairs: &[(u32, u32)]| {
            pairs.iter().map(|(u, v)| format!("[{u},{v}]")).collect::<Vec<_>>().join(",")
        };
        let v = send(
            &mut stream,
            &format!(
                "{{\"op\":\"update\",\"insert\":[{}],\"remove\":[{}]}}",
                fmt(&batch.0),
                fmt(&batch.1)
            ),
        );
        assert_eq!(v.as_object().unwrap().get("ok").unwrap().as_bool(), Some(true));

        let (direct, direct_it) = with_threads(pool, || {
            let r: dsd_core::uds::UdsResult = dsd_core::uds::pkmc::pkmc(&updated).into();
            (r, dsd_core::uds::iterate::greedy_pp(&updated, &cfg))
        });

        let v = send(&mut stream, "{\"op\":\"densest\"}");
        assert_eq!(
            v.as_object().unwrap().get("density").unwrap().as_f64().unwrap().to_bits(),
            direct.density.to_bits(),
            "pool {pool}: densest diverged from one-shot PKMC"
        );

        let v = send(&mut stream, "{\"op\":\"greedypp\",\"iterations\":6,\"epsilon\":0.05}");
        assert_eq!(
            v.as_object().unwrap().get("density").unwrap().as_f64().unwrap().to_bits(),
            direct_it.result.density.to_bits(),
            "pool {pool}: Greedy++ diverged from one-shot run"
        );
        assert_eq!(field_u64(&v, "rounds"), direct_it.rounds as u64);

        drop(stream);
        server.shutdown();
        server.join();
    }
}
