//! Property tests for the paper's approximation guarantees (Lemmas 1 and
//! 3): on random graphs, every 2-approximation algorithm must return a
//! subgraph within factor 2 of the flow-exact optimum, and no algorithm may
//! ever beat the optimum.

use proptest::prelude::*;
use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

/// Random undirected graph strategy: n in [2, 40], edge probability ~ p.
fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    (2usize..40, 0.05f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1) / 2) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi(n, m.max(1), seed)
    })
}

/// Random directed graph strategy: n in [2, 25].
fn directed_graph() -> impl Strategy<Value = dsd_graph::DirectedGraph> {
    (2usize..25, 0.05f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1)) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi_directed(n, m.max(1), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uds_two_approximation(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_uds(&g, UdsAlgorithm::Exact).density;
        for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Local, UdsAlgorithm::Pkc, UdsAlgorithm::Charikar] {
            let d = run_uds(&g, algo).density;
            prop_assert!(d * 2.0 + 1e-9 >= exact, "{algo:?}: {d} vs exact {exact}");
            prop_assert!(d <= exact + 1e-9, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn uds_loose_guarantees(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_uds(&g, UdsAlgorithm::Exact).density;
        // PBU: 2(1+eps) = 3 with eps = 0.5.
        let pbu = run_uds(&g, UdsAlgorithm::Pbu { epsilon: 0.5 }).density;
        prop_assert!(pbu * 3.0 + 1e-9 >= exact, "pbu {pbu} vs exact {exact}");
        // PFW approaches the optimum; on graphs this small, factor 2 is
        // a very loose envelope for 100 sweeps.
        let pfw = run_uds(&g, UdsAlgorithm::Pfw { iterations: 100 }).density;
        prop_assert!(pfw * 2.0 + 1e-9 >= exact, "pfw {pfw} vs exact {exact}");
    }

    #[test]
    fn dds_two_approximation(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_dds(&g, DdsAlgorithm::Exact).density;
        for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Pbs { max_rounds: None }] {
            let d = run_dds(&g, algo).density;
            prop_assert!(d * 2.0 + 1e-6 >= exact, "{algo:?}: {d} vs exact {exact}");
            prop_assert!(d <= exact + 1e-6, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn dds_loose_guarantees(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_dds(&g, DdsAlgorithm::Exact).density;
        // PBD: 2*delta*(1+eps) = 8 with the paper defaults.
        let pbd = run_dds(&g, DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }).density;
        prop_assert!(pbd * 8.0 + 1e-6 >= exact, "pbd {pbd} vs exact {exact}");
    }

    #[test]
    fn reported_density_always_matches_returned_sets(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Charikar, UdsAlgorithm::Pbu { epsilon: 0.5 }] {
            let r = run_uds(&g, algo);
            let actual = dsd_core::density::undirected_density(&g, &r.vertices);
            prop_assert!((actual - r.density).abs() < 1e-9, "{algo:?} density mismatch");
        }
    }

    #[test]
    fn dds_reported_density_matches_sets(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Pfks] {
            let r = run_dds(&g, algo);
            let actual = dsd_core::density::directed_density(&g, &r.s, &r.t);
            prop_assert!((actual - r.density).abs() < 1e-9, "{algo:?} density mismatch");
        }
    }
}
