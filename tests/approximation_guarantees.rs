//! Property tests for the paper's approximation guarantees (Lemmas 1 and
//! 3): on random graphs, every 2-approximation algorithm must return a
//! subgraph within factor 2 of the flow-exact optimum, and no algorithm may
//! ever beat the optimum.

use proptest::prelude::*;
use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

/// Random undirected graph strategy: n in [2, 40], edge probability ~ p.
fn undirected_graph() -> impl Strategy<Value = dsd_graph::UndirectedGraph> {
    (2usize..40, 0.05f64..0.6, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1) / 2) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi(n, m.max(1), seed)
    })
}

/// Random directed graph strategy: n in [2, 25].
fn directed_graph() -> impl Strategy<Value = dsd_graph::DirectedGraph> {
    (2usize..25, 0.05f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let m = ((n * (n - 1)) as f64 * p).ceil() as usize;
        dsd_graph::gen::erdos_renyi_directed(n, m.max(1), seed)
    })
}

/// Triage of the one counterexample proptest ever shrank for this suite
/// (stored in `approximation_guarantees.proptest-regressions`, which
/// proptest also replays automatically before generating novel cases): an
/// 18-vertex, 100-edge directed graph that once tripped the
/// `dds_two_approximation` bracket. Pinned here as a deterministic test so
/// the case runs even if the regressions file is ever pruned, and so the
/// push-relabel engine is checked against the Dinic legacy oracle on the
/// exact instance that was historically hardest.
#[test]
fn triaged_regression_b469ef_directed_two_approximation() {
    // Out-CSR of the stored shrink, copied verbatim from the regressions
    // file; the builder re-derives the in-CSR.
    const OUT_OFFSETS: [usize; 19] =
        [0, 7, 17, 19, 25, 31, 38, 43, 49, 53, 55, 60, 62, 66, 71, 80, 86, 89, 100];
    const OUT_ADJ: [u32; 100] = [
        4, 6, 7, 8, 11, 13, 16, 0, 2, 3, 7, 9, 10, 12, 13, 14, 16, 7, 8, 4, 9, 13, 14, 15, 17, 3,
        7, 8, 9, 14, 15, 0, 4, 10, 11, 12, 14, 15, 3, 5, 8, 15, 17, 1, 2, 3, 9, 11, 16, 2, 6, 14,
        17, 0, 7, 3, 8, 9, 16, 17, 7, 14, 1, 3, 14, 17, 3, 5, 9, 10, 16, 0, 2, 3, 6, 8, 9, 11, 13,
        15, 2, 3, 4, 8, 9, 11, 6, 13, 14, 0, 1, 2, 3, 4, 5, 6, 9, 11, 13, 14,
    ];
    let mut b = dsd_graph::DirectedGraphBuilder::new(18);
    for u in 0..18u32 {
        for &v in &OUT_ADJ[OUT_OFFSETS[u as usize]..OUT_OFFSETS[u as usize + 1]] {
            b.push_edge(u, v);
        }
    }
    let g = b.build().unwrap();
    assert_eq!(g.num_edges(), 100, "reconstruction must match the stored shrink");

    let exact = run_dds(&g, DdsAlgorithm::Exact);
    let legacy = dsd_flow::dds_exact_legacy(&g);
    assert!(
        (legacy.density - exact.density).abs() < 1e-6,
        "engine {} vs legacy oracle {} on the historical counterexample",
        exact.density,
        legacy.density
    );
    for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Pbs { max_rounds: None }] {
        let d = run_dds(&g, algo).density;
        assert!(d * 2.0 + 1e-6 >= exact.density, "{algo:?}: {d} vs exact {}", exact.density);
        assert!(d <= exact.density + 1e-6, "{algo:?} beat the optimum");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uds_two_approximation(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_uds(&g, UdsAlgorithm::Exact).density;
        for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Local, UdsAlgorithm::Pkc, UdsAlgorithm::Charikar] {
            let d = run_uds(&g, algo).density;
            prop_assert!(d * 2.0 + 1e-9 >= exact, "{algo:?}: {d} vs exact {exact}");
            prop_assert!(d <= exact + 1e-9, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn uds_loose_guarantees(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_uds(&g, UdsAlgorithm::Exact).density;
        // PBU: 2(1+eps) = 3 with eps = 0.5.
        let pbu = run_uds(&g, UdsAlgorithm::Pbu { epsilon: 0.5 }).density;
        prop_assert!(pbu * 3.0 + 1e-9 >= exact, "pbu {pbu} vs exact {exact}");
        // PFW approaches the optimum; on graphs this small, factor 2 is
        // a very loose envelope for 100 sweeps.
        let pfw = run_uds(&g, UdsAlgorithm::Pfw { iterations: 100 }).density;
        prop_assert!(pfw * 2.0 + 1e-9 >= exact, "pfw {pfw} vs exact {exact}");
    }

    #[test]
    fn dds_two_approximation(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_dds(&g, DdsAlgorithm::Exact).density;
        for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Pbs { max_rounds: None }] {
            let d = run_dds(&g, algo).density;
            prop_assert!(d * 2.0 + 1e-6 >= exact, "{algo:?}: {d} vs exact {exact}");
            prop_assert!(d <= exact + 1e-6, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn dds_loose_guarantees(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        let exact = run_dds(&g, DdsAlgorithm::Exact).density;
        // PBD: 2*delta*(1+eps) = 8 with the paper defaults.
        let pbd = run_dds(&g, DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }).density;
        prop_assert!(pbd * 8.0 + 1e-6 >= exact, "pbd {pbd} vs exact {exact}");
    }

    #[test]
    fn reported_density_always_matches_returned_sets(g in undirected_graph()) {
        prop_assume!(g.num_edges() > 0);
        for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Charikar, UdsAlgorithm::Pbu { epsilon: 0.5 }] {
            let r = run_uds(&g, algo);
            let actual = dsd_core::density::undirected_density(&g, &r.vertices);
            prop_assert!((actual - r.density).abs() < 1e-9, "{algo:?} density mismatch");
        }
    }

    #[test]
    fn dds_reported_density_matches_sets(g in directed_graph()) {
        prop_assume!(g.num_edges() > 0);
        for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Pfks] {
            let r = run_dds(&g, algo);
            let actual = dsd_core::density::directed_density(&g, &r.s, &r.t);
            prop_assert!((actual - r.density).abs() < 1e-9, "{algo:?} density mismatch");
        }
    }
}
