//! Integration tests reconstructing the paper's worked examples and
//! figures end-to-end through the public API.

use scalable_dsd::prelude::*;
use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

/// Fig. 1(a): the undirected example — a subgraph with five edges over
/// four vertices (density 5/4) is the densest.
#[test]
fn figure_1a_undirected_density() {
    let g = UndirectedGraphBuilder::new(6)
        .add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)])
        .build()
        .unwrap();
    let exact = run_uds(&g, UdsAlgorithm::Exact);
    assert!((exact.density - 1.25).abs() < 1e-9);
    // Every 2-approximation lands within factor 2.
    for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Charikar, UdsAlgorithm::Bsk] {
        let r = run_uds(&g, algo);
        assert!(r.density * 2.0 + 1e-9 >= exact.density, "{algo:?}");
    }
}

/// Fig. 1(b): the directed example — S = {v4, v5}, T = {v2, v3} with four
/// edges has density 2 and is the densest.
#[test]
fn figure_1b_directed_density() {
    let g = DirectedGraphBuilder::new(6)
        .add_edges([(4, 2), (4, 3), (5, 2), (5, 3), (0, 1)])
        .build()
        .unwrap();
    let exact = run_dds(&g, DdsAlgorithm::Exact);
    assert!((exact.density - 2.0).abs() < 1e-6);
    let pwc = run_dds(&g, DdsAlgorithm::Pwc);
    assert_eq!(pwc.s, vec![4, 5]);
    assert_eq!(pwc.t, vec![2, 3]);
    assert!((pwc.density - 2.0).abs() < 1e-9);
}

/// Fig. 2 / Example 1 regime: a K4 community with a sparse tail. The
/// h-index iteration converges to core numbers, the k*-core is the K4
/// (k* = 3), and PKMC's early stop needs no more sweeps than full
/// convergence.
#[test]
fn figure_2_k_star_core_and_early_stop() {
    let g = UndirectedGraphBuilder::new(8)
        .add_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 = {v1..v4}
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (4, 6), // tail
        ])
        .build()
        .unwrap();
    let local = dsd_core::uds::local::local_decomposition(&g);
    assert_eq!(local.k_star, 3);
    let pkmc = dsd_core::uds::pkmc::pkmc(&g);
    assert_eq!(pkmc.k_star, 3);
    assert_eq!(pkmc.vertices, vec![0, 1, 2, 3]);
    assert!(pkmc.stats.iterations <= local.stats.iterations);
}

/// Fig. 3 / Table 3 / Example 2: the exact induce-numbers of the paper's
/// w-induced decomposition example (u1..u4 = 0..3, v1..v5 = 4..8).
#[test]
fn figure_3_w_induced_decomposition() {
    let g = DirectedGraphBuilder::new(9)
        .add_edges([
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 4),
            (1, 5),
            (1, 6),
            (1, 7),
            (1, 8),
            (2, 6),
            (2, 7),
            (3, 7),
        ])
        .build()
        .unwrap();
    let d = dsd_core::dds::winduced::w_decomposition(&g);
    assert_eq!(d.w_star, 6, "Table 3: maximum induce-number is 6");
    let mut star: Vec<(u32, u32)> = d.w_star_edges(&g);
    star.sort_unstable();
    // Fig 3(b): the w*-induced subgraph is {u1, u2} x {v1, v2, v3}.
    assert_eq!(star, vec![(0, 4), (0, 5), (0, 6), (1, 4), (1, 5), (1, 6)]);
}

/// Example 2's peeling order check: the first edge peeled is (u4, v4)
/// with induce-number 3, matching the weight 3 the paper computes.
#[test]
fn example_2_first_peel() {
    let g = DirectedGraphBuilder::new(9)
        .add_edges([
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 4),
            (1, 5),
            (1, 6),
            (1, 7),
            (1, 8),
            (2, 6),
            (2, 7),
            (3, 7),
        ])
        .build()
        .unwrap();
    // Initial weight of (u4, v4) = d+(u4) * d-(v4) = 1 * 3 = 3, the minimum.
    assert_eq!(g.out_degree(3) * g.in_degree(7), 3);
    let d = dsd_core::dds::winduced::w_decomposition(&g);
    let idx = dsd_core::dds::winduced::edge_endpoints(&g).position(|e| e == (3, 7)).unwrap();
    assert_eq!(d.induce_number[idx], 3);
}

/// Fig. 4 / Examples 3-4 regime: a graph whose w*-induced subgraph is
/// strictly larger than its [x*, y*]-core — extra weight-w* edges hang on
/// low-in-degree targets and must be eliminated by the collapse test.
#[test]
fn figure_4_core_extraction_discards_outliers() {
    // [4,3]-core: u1..u3 (0..3) x v1..v4 (3..7); plus v5, v6 (7, 8) with
    // in-degree 1 fed by high-out-degree sources.
    let mut b = DirectedGraphBuilder::new(9);
    for u in 0..3u32 {
        for v in 3..7u32 {
            b.push_edge(u, v);
        }
    }
    // Give u0 two extra targets with in-degree 1: weight 6*1 = 6 < w*,
    // peeled early; they must not appear in the final core.
    b.push_edge(0, 7);
    b.push_edge(0, 8);
    let g = b.build().unwrap();
    let r = dsd_core::dds::pwc::pwc(&g);
    assert_eq!(r.cn_pair.0 * r.cn_pair.1, 12);
    assert!(!r.result.t.contains(&7));
    assert!(!r.result.t.contains(&8));
    assert_eq!(r.result.s, vec![0, 1, 2]);
    assert_eq!(r.result.t, vec![3, 4, 5, 6]);
}

/// Section I's claim that directed density generalises undirected
/// density, exercised through the public exact oracles: on the doubled
/// graph, DDS density = 2 x UDS density when the optimum is symmetric.
#[test]
fn density_generalisation_on_doubled_clique() {
    let mut b = UndirectedGraphBuilder::new(5);
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            b.push_edge(u, v);
        }
    }
    let ug = b.build().unwrap();
    let mut db = DirectedGraphBuilder::new(5);
    for (u, v) in ug.edges() {
        db.push_edge(u, v);
        db.push_edge(v, u);
    }
    let dg = db.build().unwrap();
    let uds = run_uds(&ug, UdsAlgorithm::Exact);
    let dds = run_dds(&dg, DdsAlgorithm::Exact);
    assert!((dds.density - 2.0 * uds.density).abs() < 1e-6);
}

/// Golden pins for Fig. 1(a): `k* = 2`, the exact optimum is the unique
/// five-edge subgraph {v1..v4} at density 5/4, and the engine, the Dinic
/// legacy oracle, and PKMC all agree on the value end to end.
#[test]
fn golden_figure_1a_exact_certificate_and_k_star() {
    let g = UndirectedGraphBuilder::new(6)
        .add_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)])
        .build()
        .unwrap();
    let pkmc = dsd_core::uds::pkmc::pkmc(&g);
    assert_eq!(pkmc.k_star, 2);
    let exact = dsd_core::uds::exact::uds_exact_certified(&g);
    let mut cert = exact.vertices.clone();
    cert.sort_unstable();
    assert_eq!(cert, vec![0, 1, 2, 3], "unique optimum is the 5-edge subgraph");
    assert!((exact.density - 1.25).abs() < 1e-12);
    let legacy = dsd_flow::uds_exact_legacy(&g);
    assert!((legacy.density - exact.density).abs() < 1e-9);
    // Theorem 1 bracket, tight on this instance: k*/2 <= rho_hat <= rho*.
    assert!(pkmc.density <= exact.density + 1e-12);
    assert!(2.0 * pkmc.density + 1e-12 >= exact.density);
}

/// Golden pins for Fig. 2: `k* = 3`, the exact optimum is the K4 at
/// density 3/2, and PKMC's k*-core IS the exact answer on this instance.
#[test]
fn golden_figure_2_exact_matches_pkmc_core() {
    let g = UndirectedGraphBuilder::new(8)
        .add_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (4, 6),
        ])
        .build()
        .unwrap();
    let pkmc = dsd_core::uds::pkmc::pkmc(&g);
    assert_eq!(pkmc.k_star, 3);
    let exact = run_uds(&g, UdsAlgorithm::Exact);
    let mut cert = exact.vertices.clone();
    cert.sort_unstable();
    assert_eq!(cert, vec![0, 1, 2, 3], "unique optimum is the K4");
    assert!((exact.density - 1.5).abs() < 1e-12);
    // End-to-end agreement: the 2-approximation is exact here.
    assert_eq!(pkmc.vertices, cert);
    assert!((pkmc.density - exact.density).abs() < 1e-12);
    let legacy = dsd_flow::uds_exact_legacy(&g);
    assert!((legacy.density - exact.density).abs() < 1e-9);
}

/// Golden pins for Fig. 3: `w* = 6`, and the exact DDS optimum is
/// S = {u1, u2, u3}, T = {v1..v4} at density 9/sqrt(12) = 3*sqrt(3)/2 —
/// strictly denser than the w*-induced subgraph (6/sqrt(6)), which shows
/// the decomposition certificate and the densest pair are different
/// objects on the same instance.
#[test]
fn golden_figure_3_exact_beats_w_star_subgraph() {
    let g = DirectedGraphBuilder::new(9)
        .add_edges([
            (0, 4),
            (0, 5),
            (0, 6),
            (1, 4),
            (1, 5),
            (1, 6),
            (1, 7),
            (1, 8),
            (2, 6),
            (2, 7),
            (3, 7),
        ])
        .build()
        .unwrap();
    let d = dsd_core::dds::winduced::w_decomposition(&g);
    assert_eq!(d.w_star, 6);
    let exact = dsd_core::dds::exact::dds_exact_certified(&g);
    let optimum = 3.0 * 3.0f64.sqrt() / 2.0; // 9 edges over sqrt(3 * 4)
    assert!((exact.density - optimum).abs() < 1e-9, "exact {} != 3*sqrt(3)/2", exact.density);
    let (mut s, mut t) = (exact.s.clone(), exact.t.clone());
    s.sort_unstable();
    t.sort_unstable();
    assert_eq!(s, vec![0, 1, 2]);
    assert_eq!(t, vec![4, 5, 6, 7]);
    // The w*-subgraph {u1, u2} x {v1, v2, v3} is a weaker candidate.
    let w_star_density = 6.0 / 6.0f64.sqrt();
    assert!(exact.density > w_star_density + 0.1);
    // Brute force (n = 9) and the legacy Dinic oracle agree.
    let (_, _, brute) = dsd_core::dds::exact::dds_brute_force(&g);
    assert!((brute - exact.density).abs() < 1e-9);
    let legacy = dsd_flow::dds_exact_legacy(&g);
    assert!((legacy.density - exact.density).abs() < 1e-6);
    // Theorem 2 bracket for PWC, end to end.
    let pwc = run_dds(&g, DdsAlgorithm::Pwc);
    assert!(pwc.density <= exact.density + 1e-9);
    assert!(2.0 * pwc.density + 1e-9 >= exact.density);
}

/// Golden pins for Fig. 4: `[x*, y*] = [3, 4]` (pinned as product and sum
/// to stay orientation-agnostic), and the exact optimum is the 3x4
/// biclique at density 12/sqrt(12) = 2*sqrt(3) — PWC's core IS the exact
/// answer, so the approximation and the engine agree set-for-set.
#[test]
fn golden_figure_4_exact_matches_xy_core() {
    let mut b = DirectedGraphBuilder::new(9);
    for u in 0..3u32 {
        for v in 3..7u32 {
            b.push_edge(u, v);
        }
    }
    b.push_edge(0, 7);
    b.push_edge(0, 8);
    let g = b.build().unwrap();
    let pwc = dsd_core::dds::pwc::pwc(&g);
    assert_eq!(pwc.cn_pair.0 * pwc.cn_pair.1, 12);
    assert_eq!(pwc.cn_pair.0 + pwc.cn_pair.1, 7, "cn-pair is [3, 4]");
    let exact = dsd_core::dds::exact::dds_exact_certified(&g);
    let optimum = 2.0 * 3.0f64.sqrt(); // 12 edges over sqrt(3 * 4)
    assert!((exact.density - optimum).abs() < 1e-9, "exact {} != 2*sqrt(3)", exact.density);
    let (mut s, mut t) = (exact.s.clone(), exact.t.clone());
    s.sort_unstable();
    t.sort_unstable();
    assert_eq!(s, pwc.result.s);
    assert_eq!(t, pwc.result.t);
    assert!((pwc.result.density - exact.density).abs() < 1e-9);
    let legacy = dsd_flow::dds_exact_legacy(&g);
    assert!((legacy.density - exact.density).abs() < 1e-6);
}

/// The paper's remark that the k*-core may split into components, any of
/// which is a valid answer: two disjoint K4s share k* = 3 and PKMC
/// returns both; each component alone still satisfies the guarantee.
#[test]
fn k_star_core_with_two_components() {
    let mut b = UndirectedGraphBuilder::new(8);
    for base in [0u32, 4u32] {
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.push_edge(base + u, base + v);
            }
        }
    }
    let g = b.build().unwrap();
    let r = dsd_core::uds::pkmc::pkmc(&g);
    assert_eq!(r.k_star, 3);
    assert_eq!(r.vertices.len(), 8);
    let exact = run_uds(&g, UdsAlgorithm::Exact);
    // Each K4 component has density 1.5 = the optimum.
    let comp: Vec<u32> = (0..4).collect();
    let comp_density = dsd_core::density::undirected_density(&g, &comp);
    assert!(comp_density * 2.0 + 1e-9 >= exact.density);
}
