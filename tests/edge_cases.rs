//! Edge-case and failure-injection tests: every public algorithm must
//! behave sanely on degenerate inputs (empty graphs, isolated vertices,
//! stars, bipartite blocks, duplicate/self-loop-heavy edge lists).

use scalable_dsd::prelude::*;
use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

fn all_uds() -> Vec<UdsAlgorithm> {
    vec![
        UdsAlgorithm::Pkmc,
        UdsAlgorithm::Local,
        UdsAlgorithm::Pkc,
        UdsAlgorithm::Charikar,
        UdsAlgorithm::Pbu { epsilon: 0.5 },
        UdsAlgorithm::Pfw { iterations: 20 },
        UdsAlgorithm::Bsk,
        UdsAlgorithm::Exact,
    ]
}

fn all_dds() -> Vec<DdsAlgorithm> {
    vec![
        DdsAlgorithm::Pwc,
        DdsAlgorithm::Pxy,
        DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 },
        DdsAlgorithm::Pfks,
        DdsAlgorithm::Pbs { max_rounds: Some(50) },
        DdsAlgorithm::Pfw { iterations: 20 },
        DdsAlgorithm::Exact,
    ]
}

#[test]
fn every_uds_algorithm_on_empty_graph() {
    let g = UndirectedGraphBuilder::new(0).build().unwrap();
    for algo in all_uds() {
        let r = run_uds(&g, algo);
        assert_eq!(r.density, 0.0, "{algo:?}");
        assert!(r.vertices.is_empty(), "{algo:?}");
    }
}

#[test]
fn every_uds_algorithm_on_edgeless_graph() {
    let g = UndirectedGraphBuilder::new(7).build().unwrap();
    for algo in all_uds() {
        let r = run_uds(&g, algo);
        assert_eq!(r.density, 0.0, "{algo:?}");
    }
}

#[test]
fn every_dds_algorithm_on_empty_graph() {
    let g = DirectedGraphBuilder::new(0).build().unwrap();
    for algo in all_dds() {
        let r = run_dds(&g, algo);
        assert_eq!(r.density, 0.0, "{algo:?}");
        assert!(r.s.is_empty() && r.t.is_empty(), "{algo:?}");
    }
}

#[test]
fn every_uds_algorithm_on_single_edge() {
    let g = UndirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
    for algo in all_uds() {
        let r = run_uds(&g, algo);
        assert!((r.density - 0.5).abs() < 1e-9, "{algo:?} density {}", r.density);
    }
}

#[test]
fn every_dds_algorithm_on_single_edge() {
    let g = DirectedGraphBuilder::new(2).add_edge(0, 1).build().unwrap();
    for algo in all_dds() {
        let r = run_dds(&g, algo);
        assert!((r.density - 1.0).abs() < 1e-6, "{algo:?} density {}", r.density);
    }
}

#[test]
fn star_graph_all_algorithms_agree_on_guarantee() {
    // K_{1,20}: exact density 20/21; k* = 1 so the k*-core is everything.
    let mut b = UndirectedGraphBuilder::new(21);
    for leaf in 1..21u32 {
        b.push_edge(0, leaf);
    }
    let g = b.build().unwrap();
    let exact = run_uds(&g, UdsAlgorithm::Exact).density;
    assert!((exact - 20.0 / 21.0).abs() < 1e-9);
    for algo in all_uds() {
        let r = run_uds(&g, algo);
        assert!(r.density * 3.0 + 1e-9 >= exact, "{algo:?}");
    }
}

#[test]
fn directed_star_hub() {
    // 20 sources -> 1 target: exact density 20/sqrt(20) = sqrt(20).
    let mut b = DirectedGraphBuilder::new(21);
    for s in 1..21u32 {
        b.push_edge(s, 0);
    }
    let g = b.build().unwrap();
    let expected = (20.0f64).sqrt();
    for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy, DdsAlgorithm::Exact] {
        let r = run_dds(&g, algo);
        assert!((r.density - expected).abs() < 1e-6, "{algo:?} density {}", r.density);
    }
}

#[test]
fn duplicate_and_self_loop_heavy_input() {
    // The builder sanitises; algorithms must see the clean graph.
    let mut b = UndirectedGraphBuilder::new(4);
    for _ in 0..10 {
        b.push_edge(0, 1);
        b.push_edge(1, 0);
        b.push_edge(2, 2);
        b.push_edge(1, 2);
    }
    let g = b.build().unwrap();
    assert_eq!(g.num_edges(), 2);
    let r = run_uds(&g, UdsAlgorithm::Pkmc);
    assert!(r.density > 0.0);
}

#[test]
fn disconnected_components_densest_found() {
    // Sparse component (path) + dense component (K5): the K5 wins.
    let mut b = UndirectedGraphBuilder::new(15);
    for v in 0..9u32 {
        b.push_edge(v, v + 1);
    }
    for u in 10..15u32 {
        for v in (u + 1)..15 {
            b.push_edge(u, v);
        }
    }
    let g = b.build().unwrap();
    for algo in [UdsAlgorithm::Pkmc, UdsAlgorithm::Charikar, UdsAlgorithm::Exact] {
        let r = run_uds(&g, algo);
        assert_eq!(r.vertices, vec![10, 11, 12, 13, 14], "{algo:?}");
        assert!((r.density - 2.0).abs() < 1e-9, "{algo:?}");
    }
}

#[test]
fn antiparallel_edge_pairs_directed() {
    // Dense 2-cycles: S = T = all; every algorithm stays within guarantee.
    let mut b = DirectedGraphBuilder::new(6);
    for u in 0..6u32 {
        for v in 0..6u32 {
            if u != v {
                b.push_edge(u, v);
            }
        }
    }
    let g = b.build().unwrap();
    let exact = run_dds(&g, DdsAlgorithm::Exact).density;
    assert!((exact - 5.0).abs() < 1e-6); // complete digraph: 30/sqrt(36)
    for algo in [DdsAlgorithm::Pwc, DdsAlgorithm::Pxy] {
        let r = run_dds(&g, algo);
        assert!(r.density * 2.0 + 1e-6 >= exact, "{algo:?}");
    }
}

#[test]
fn very_skewed_degree_distribution() {
    // One mega-hub plus a weak clique: exercises bucket-queue ranges and
    // the d_max warm start.
    let mut b = UndirectedGraphBuilder::new(1200);
    for leaf in 1..1000u32 {
        b.push_edge(0, leaf);
    }
    for u in 1000..1010u32 {
        for v in (u + 1)..1010 {
            b.push_edge(u, v);
        }
    }
    let g = b.build().unwrap();
    let exact = run_uds(&g, UdsAlgorithm::Exact);
    // K10 has density 4.5 > star's ~1.
    assert!((exact.density - 4.5).abs() < 1e-9);
    let r = run_uds(&g, UdsAlgorithm::Pkmc);
    assert_eq!(r.vertices, (1000u32..1010).collect::<Vec<_>>());
}

#[test]
fn thread_pool_one_thread_matches_default() {
    let g = dsd_graph::gen::chung_lu(500, 3000, 2.3, 123);
    let a = run_uds(&g, UdsAlgorithm::Pkmc);
    let b = dsd_core::runner::with_threads(1, || run_uds(&g, UdsAlgorithm::Pkmc));
    assert_eq!(a.vertices, b.vertices);
}
