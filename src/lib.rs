//! # scalable-dsd
//!
//! Scalable parallel algorithms for **Densest Subgraph Discovery** on
//! undirected and directed graphs — a from-scratch Rust reproduction of
//! *"Scalable Algorithms for Densest Subgraph Discovery"* (Wensheng Luo,
//! Zhuo Tang, Yixiang Fang, Chenhao Ma, Xu Zhou; ICDE 2023).
//!
//! ## Quickstart
//!
//! ```
//! use scalable_dsd::prelude::*;
//!
//! // Undirected: find a 2-approximate densest subgraph with PKMC.
//! let g = UndirectedGraphBuilder::new(5)
//!     .add_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
//!     .build()
//!     .unwrap();
//! let dense = densest_subgraph(&g);
//! assert_eq!(dense.vertices, vec![0, 1, 2]); // the triangle
//!
//! // Directed: find a 2-approximate (S, T)-densest subgraph with PWC.
//! let d = DirectedGraphBuilder::new(4)
//!     .add_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
//!     .build()
//!     .unwrap();
//! let dds = densest_subgraph_directed(&d);
//! assert_eq!(dds.s, vec![0, 1]);
//! assert_eq!(dds.t, vec![2, 3]);
//! ```
//!
//! ## Crate map
//!
//! * [`dsd_graph`] (re-exported as [`graph`]) — CSR graphs, generators,
//!   IO, sampling.
//! * [`dsd_flow`] (re-exported as [`flow`]) — max-flow and *exact* UDS/DDS
//!   oracles.
//! * [`dsd_core`] (re-exported as [`algo`]) — PKMC, PWC, and every
//!   baseline the paper compares against, plus thread-pool control.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the reproduction of the paper's tables and figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dsd_core as algo;
pub use dsd_flow as flow;
pub use dsd_graph as graph;

use dsd_core::dds::DdsResult;
use dsd_core::uds::UdsResult;
use dsd_graph::{DirectedGraph, UndirectedGraph};

/// Common imports for library users.
pub mod prelude {
    pub use crate::{
        densest_subgraph, densest_subgraph_directed, run_dds, run_uds, DdsAlgorithm, UdsAlgorithm,
    };
    pub use dsd_core::dds::DdsResult;
    pub use dsd_core::uds::iterate::CertifyMode;
    pub use dsd_core::uds::UdsResult;
    pub use dsd_graph::{
        DirectedGraph, DirectedGraphBuilder, UndirectedGraph, UndirectedGraphBuilder, VertexId,
    };
}

/// Finds a 2-approximate undirected densest subgraph using the paper's
/// PKMC algorithm (Algorithm 2) — the recommended default.
pub fn densest_subgraph(g: &UndirectedGraph) -> UdsResult {
    dsd_core::uds::pkmc::pkmc(g).into()
}

/// Finds a 2-approximate directed densest subgraph using the paper's PWC
/// algorithm (Algorithm 4) — the recommended default.
pub fn densest_subgraph_directed(g: &DirectedGraph) -> DdsResult {
    dsd_core::dds::pwc::pwc(g).result
}

/// Selector for the undirected algorithms compared in the paper (Exp-1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UdsAlgorithm {
    /// The paper's Algorithm 2 (default).
    Pkmc,
    /// Full h-index core decomposition (Sariyüce et al.).
    Local,
    /// Parallel level-by-level peeling (Kabir & Madduri).
    Pkc,
    /// Charikar's serial greedy peel.
    Charikar,
    /// Bahmani et al. batch peel with parameter ε.
    Pbu {
        /// Approximation slack (paper default 0.5).
        epsilon: f64,
    },
    /// Frank–Wolfe with a sweep budget.
    Pfw {
        /// Number of sweeps (paper's ε = 1 setting ≈ 100).
        iterations: usize,
    },
    /// Binary-search `k*`-core (the Section IV-B "simple method",
    /// implemented as an ablation baseline).
    Bsk,
    /// Greedy++ (Boob et al.): iterated load-augmented peeling with a
    /// load-vector dual bound and optional flow certification.
    GreedyPP {
        /// Maximum number of peel rounds.
        iterations: usize,
        /// Approximation slack ε for the certified early stop.
        epsilon: f64,
        /// How to certify the answer.
        certify: dsd_core::uds::iterate::CertifyMode,
    },
    /// FISTA (Harb et al.): accelerated projected gradient over fractional
    /// edge orientations, same certified driver as [`UdsAlgorithm::GreedyPP`].
    Fista {
        /// Maximum number of gradient rounds.
        iterations: usize,
        /// Approximation slack ε for the certified early stop.
        epsilon: f64,
        /// How to certify the answer.
        certify: dsd_core::uds::iterate::CertifyMode,
    },
    /// Exact flow-based optimum (small graphs only).
    Exact,
}

/// Runs the selected UDS algorithm.
pub fn run_uds(g: &UndirectedGraph, algorithm: UdsAlgorithm) -> UdsResult {
    use dsd_core::stats::Stats;
    match algorithm {
        UdsAlgorithm::Pkmc => dsd_core::uds::pkmc::pkmc(g).into(),
        UdsAlgorithm::Local => {
            let d = dsd_core::uds::local::local_decomposition(g);
            let vertices = d.k_star_core();
            let density = dsd_core::density::undirected_density(g, &vertices);
            UdsResult { vertices, density, stats: d.stats }
        }
        UdsAlgorithm::Pkc => {
            let d = dsd_core::uds::pkc::pkc_decomposition(g);
            let vertices = d.k_star_core();
            let density = dsd_core::density::undirected_density(g, &vertices);
            UdsResult { vertices, density, stats: d.stats }
        }
        UdsAlgorithm::Charikar => dsd_core::uds::charikar::charikar(g),
        UdsAlgorithm::Pbu { epsilon } => dsd_core::uds::pbu::pbu(g, epsilon),
        UdsAlgorithm::Pfw { iterations } => {
            dsd_core::uds::pfw::pfw_with(g, dsd_core::uds::pfw::PfwConfig { iterations })
        }
        UdsAlgorithm::Bsk => dsd_core::uds::bsk::bsk(g),
        UdsAlgorithm::GreedyPP { iterations, epsilon, certify } => {
            let cfg = dsd_core::uds::iterate::IterateConfig { iterations, epsilon, certify };
            dsd_core::uds::iterate::greedy_pp(g, &cfg).result
        }
        UdsAlgorithm::Fista { iterations, epsilon, certify } => {
            let cfg = dsd_core::uds::iterate::IterateConfig { iterations, epsilon, certify };
            dsd_core::uds::iterate::fista(g, &cfg).result
        }
        UdsAlgorithm::Exact => {
            // PKMC-seeded push-relabel engine: same optimum as
            // `dsd_flow::uds_exact`, warm-started and core-pruned.
            let (r, wall) = dsd_core::stats::timed(|| dsd_core::uds::exact::uds_exact_certified(g));
            UdsResult { vertices: r.vertices, density: r.density, stats: Stats::new(0, wall) }
        }
    }
}

/// Selector for the directed algorithms compared in the paper (Exp-5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DdsAlgorithm {
    /// The paper's Algorithm 4 (default).
    Pwc,
    /// cn-pair enumeration (Ma et al., parallelised).
    Pxy,
    /// Bahmani et al. directed batch peel (δ, ε).
    Pbd {
        /// Ratio-guess base (paper default 2.0).
        delta: f64,
        /// Batch slack (paper default 1.0).
        epsilon: f64,
    },
    /// Fixed Khuller–Saha linear peel.
    Pfks,
    /// Charikar's full ratio enumeration (optionally capped).
    Pbs {
        /// Round cap; `None` is the faithful `O(n²)` enumeration.
        max_rounds: Option<usize>,
    },
    /// Directed Frank–Wolfe with a sweep budget.
    Pfw {
        /// Number of sweeps.
        iterations: usize,
    },
    /// Directed Greedy++: iterated load-augmented ratio peeling with an
    /// optional exact-certification handshake.
    GreedyPP {
        /// Number of load-augmented rounds.
        iterations: usize,
        /// Hand the incumbent to the exact oracle (small graphs only).
        certify_exact: bool,
    },
    /// Exact flow-based optimum (small graphs only).
    Exact,
}

/// Runs the selected DDS algorithm.
pub fn run_dds(g: &DirectedGraph, algorithm: DdsAlgorithm) -> DdsResult {
    use dsd_core::stats::Stats;
    match algorithm {
        DdsAlgorithm::Pwc => dsd_core::dds::pwc::pwc(g).result,
        DdsAlgorithm::Pxy => dsd_core::dds::pxy::pxy(g).result,
        DdsAlgorithm::Pbd { delta, epsilon } => {
            dsd_core::dds::pbd::pbd_with(g, dsd_core::dds::pbd::PbdConfig { delta, epsilon })
        }
        DdsAlgorithm::Pfks => dsd_core::dds::pfks::pfks(g),
        DdsAlgorithm::Pbs { max_rounds } => {
            dsd_core::dds::pbs::pbs_with(g, dsd_core::dds::pbs::PbsConfig { max_rounds })
        }
        DdsAlgorithm::Pfw { iterations } => dsd_core::dds::pfw::pfw_directed_with(
            g,
            dsd_core::dds::pfw::PfwDirectedConfig { iterations },
        ),
        DdsAlgorithm::GreedyPP { iterations, certify_exact } => {
            let cfg = dsd_core::dds::iterate::DdsIterateConfig { iterations, certify_exact };
            dsd_core::dds::iterate::greedy_pp_dds(g, &cfg).result
        }
        DdsAlgorithm::Exact => {
            // PWC-seeded push-relabel engine: same optimum as
            // `dsd_flow::dds_exact`, with incumbent-based ratio pruning.
            let (r, wall) = dsd_core::stats::timed(|| dsd_core::dds::exact::dds_exact_certified(g));
            DdsResult { s: r.s, t: r.t, density: r.density, stats: Stats::new(0, wall) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsd_graph::UndirectedGraphBuilder;

    #[test]
    fn all_uds_algorithms_run() {
        let g = dsd_graph::gen::erdos_renyi(60, 240, 1);
        let exact = run_uds(&g, UdsAlgorithm::Exact);
        for algo in [
            UdsAlgorithm::Pkmc,
            UdsAlgorithm::Local,
            UdsAlgorithm::Pkc,
            UdsAlgorithm::Charikar,
            UdsAlgorithm::Pbu { epsilon: 0.5 },
            UdsAlgorithm::Pfw { iterations: 50 },
            UdsAlgorithm::Bsk,
            UdsAlgorithm::GreedyPP {
                iterations: 20,
                epsilon: 0.1,
                certify: algo::uds::iterate::CertifyMode::Dual,
            },
            UdsAlgorithm::Fista {
                iterations: 40,
                epsilon: 0.1,
                certify: algo::uds::iterate::CertifyMode::Exact,
            },
        ] {
            let r = run_uds(&g, algo);
            assert!(r.density > 0.0, "{algo:?} returned zero density");
            assert!(r.density <= exact.density + 1e-9, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn all_dds_algorithms_run() {
        let g = dsd_graph::gen::erdos_renyi_directed(25, 120, 2);
        let exact = run_dds(&g, DdsAlgorithm::Exact);
        for algo in [
            DdsAlgorithm::Pwc,
            DdsAlgorithm::Pxy,
            DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 },
            DdsAlgorithm::Pfks,
            DdsAlgorithm::Pbs { max_rounds: Some(200) },
            DdsAlgorithm::Pfw { iterations: 50 },
            DdsAlgorithm::GreedyPP { iterations: 5, certify_exact: true },
        ] {
            let r = run_dds(&g, algo);
            assert!(r.density > 0.0, "{algo:?} returned zero density");
            assert!(r.density <= exact.density + 1e-6, "{algo:?} beat the optimum");
        }
    }

    #[test]
    fn default_entry_points() {
        let g = UndirectedGraphBuilder::new(3).add_edges([(0, 1), (1, 2), (0, 2)]).build().unwrap();
        let r = densest_subgraph(&g);
        assert_eq!(r.vertices, vec![0, 1, 2]);
    }
}
