//! `dsd` — command-line interface for scalable densest subgraph discovery.
//!
//! ```text
//! dsd uds   --input graph.txt [--algo pkmc] [--threads 4] [--print-vertices]
//! dsd dds   --input graph.txt [--algo pwc]  [--threads 4] [--print-vertices]
//! dsd gen   --model chung-lu --n 10000 --m 80000 [--seed 7] [--directed] --out graph.txt
//! dsd stats --input graph.txt [--directed]
//! dsd pack  --input graph.txt --out graph.dsdz [--directed] [--no-reorder] [--spill-arcs N]
//! ```
//!
//! Graphs are whitespace edge lists (`u v` per line; `#`/`%` comments).

use std::collections::HashMap;
use std::process::ExitCode;

use dsd_core::uds::iterate::CertifyMode;
use scalable_dsd::{run_dds, run_uds, DdsAlgorithm, UdsAlgorithm};

// The CLI is where allocation accounting lives: traces produced by `dsd`
// (notably `dsd profile`) carry real alloc/peak-live numbers, while the
// benchmark binaries keep the system allocator so committed timing ratios
// stay free of accounting overhead.
#[global_allocator]
static ALLOC: dsd_telemetry::alloc::CountingAlloc = dsd_telemetry::alloc::CountingAlloc::new();

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dsd uds   --input FILE\n            [--algo pkmc|local|pkc|charikar|pbu|pfw|bsk|greedypp|fista|exact]\n            [--threads N] [--epsilon F] [--iterations N] [--iters N]\n            [--certify none|dual|exact] [--trace FILE] [--print-vertices]\n            (greedypp/fista: iterative near-optimal engine; stops when\n             density*(1+epsilon) >= dual bound; --certify exact hands the\n             incumbent to the flow oracle)\n  dsd dds   --input FILE [--algo pwc|pxy|pbd|pfks|pbs|pfw|greedypp|exact]\n            [--threads N] [--certify none|exact] [--print-vertices]\n  dsd profile --input FILE [--algo ALGO] [--directed] [--threads N]\n            [--trace FILE] [--chrome FILE] [--folded FILE]\n            (runs one engine under the flight recorder: prints the phase /\n             span / histogram / allocation summary, and optionally writes\n             the dsd-trace/v2 JSON, a chrome://tracing trace-event file,\n             and flamegraph-ready folded stacks)\n  dsd gen   --model er|chung-lu|ba|rmat --n N --m M [--seed S] [--gamma F]\n            [--directed] --out FILE\n  dsd stats --input FILE [--directed]\n  dsd decompose --input FILE --what core|truss|induce --out FILE\n            (core/truss: undirected; induce: directed edge induce-numbers)\n  dsd pack  --input FILE --out FILE [--directed] [--no-reorder] [--spill-arcs N]\n            (delta-varint compress to the binary v2 format; reorders by\n             descending degree first unless --no-reorder; --spill-arcs\n             ingests through disk shards of N arcs, bounding peak RSS)\n  dsd update --input FILE --delta FILE [--directed] [--threads N]\n            [--trace FILE] [--out FILE]\n            (applies an edge-delta file — text `+ u v`/`- u v` lines or\n             the DSDDELTA binary — to a base graph in any format and\n             maintains the k*-core / w-induced certificate incrementally\n             from the previous fixed point; --out writes the updated\n             graph as a text edge list)\n  dsd serve --input FILE [--directed] [--listen ADDR | --socket PATH]\n            [--workers N] [--threads N] [--no-record]\n            (long-running query daemon: loads the graph once, precomputes\n             the k*-core / [x*,y*]-core certificates and the densest\n             subgraph, and answers length-prefixed JSON queries —\n             densest|density|core|neighborhood|greedypp|stats|update|\n             shutdown — over TCP (default 127.0.0.1:0) or a Unix socket;\n             update applies a delta batch into a fresh snapshot version\n             without blocking in-flight queries)"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a}"));
        };
        // Boolean flags take no value.
        if matches!(name, "directed" | "print-vertices" | "no-reorder" | "no-record") {
            flags.insert(name.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match command.as_str() {
        "uds" => cmd_uds(&flags),
        "dds" => cmd_dds(&flags),
        "profile" => cmd_profile(&flags),
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "decompose" => cmd_decompose(&flags),
        "pack" => cmd_pack(&flags),
        "update" => cmd_update(&flags),
        "serve" => cmd_serve(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn with_threads<T: Send>(
    flags: &HashMap<String, String>,
    f: impl FnOnce() -> T + Send,
) -> Result<T, String> {
    let threads: usize = get_parsed(flags, "threads", 0)?;
    if threads == 0 {
        Ok(f())
    } else {
        Ok(dsd_core::runner::with_threads(threads, f))
    }
}

/// Parses `--certify none|dual|exact` (default `dual`).
fn parse_certify(flags: &HashMap<String, String>) -> Result<CertifyMode, String> {
    match flags.get("certify").map(String::as_str).unwrap_or("dual") {
        "none" => Ok(CertifyMode::None),
        "dual" => Ok(CertifyMode::Dual),
        "exact" => Ok(CertifyMode::Exact),
        other => Err(format!("unknown certify mode {other} (use none|dual|exact)")),
    }
}

fn certificate_line(c: &dsd_core::uds::iterate::Certificate) -> String {
    use dsd_core::uds::iterate::Certificate;
    match c {
        Certificate::Uncertified => "uncertified".to_string(),
        Certificate::DualGap { upper_bound, epsilon } => {
            format!("dual-gap (upper bound {upper_bound:.6}, epsilon {epsilon})")
        }
        Certificate::Exact { flow_probes, improved } => {
            format!("exact (flow probes {flow_probes}, improved {improved})")
        }
    }
}

/// Parses the UDS algorithm selection plus its tuning flags (`--epsilon`,
/// `--iterations`/`--iters`, `--certify`), shared by `uds` and `profile`.
fn parse_uds_algo(flags: &HashMap<String, String>) -> Result<UdsAlgorithm, String> {
    let epsilon: f64 = get_parsed(flags, "epsilon", 0.5)?;
    // `--iters` is the iterative-engine spelling; it wins over `--iterations`.
    let iterations: usize = match flags.contains_key("iters") {
        true => get_parsed(flags, "iters", 100)?,
        false => get_parsed(flags, "iterations", 100)?,
    };
    let certify = parse_certify(flags)?;
    // The iterative engine's ε defaults to the certified 1% gap, not PBU's 0.5.
    let gap_epsilon: f64 = get_parsed(flags, "epsilon", 0.01)?;
    match flags.get("algo").map(String::as_str).unwrap_or("pkmc") {
        "pkmc" => Ok(UdsAlgorithm::Pkmc),
        "local" => Ok(UdsAlgorithm::Local),
        "pkc" => Ok(UdsAlgorithm::Pkc),
        "charikar" => Ok(UdsAlgorithm::Charikar),
        "pbu" => Ok(UdsAlgorithm::Pbu { epsilon }),
        "pfw" => Ok(UdsAlgorithm::Pfw { iterations }),
        "bsk" => Ok(UdsAlgorithm::Bsk),
        "greedypp" => Ok(UdsAlgorithm::GreedyPP { iterations, epsilon: gap_epsilon, certify }),
        "fista" => Ok(UdsAlgorithm::Fista { iterations, epsilon: gap_epsilon, certify }),
        "exact" => Ok(UdsAlgorithm::Exact),
        other => Err(format!("unknown UDS algorithm {other}")),
    }
}

/// Parses the DDS algorithm selection, shared by `dds` and `profile`.
fn parse_dds_algo(flags: &HashMap<String, String>) -> Result<DdsAlgorithm, String> {
    let iterations: usize = get_parsed(flags, "iterations", 100)?;
    match flags.get("algo").map(String::as_str).unwrap_or("pwc") {
        "pwc" => Ok(DdsAlgorithm::Pwc),
        "pxy" => Ok(DdsAlgorithm::Pxy),
        "pbd" => Ok(DdsAlgorithm::Pbd { delta: 2.0, epsilon: 1.0 }),
        "pfks" => Ok(DdsAlgorithm::Pfks),
        "pbs" => Ok(DdsAlgorithm::Pbs { max_rounds: Some(10_000) }),
        "pfw" => Ok(DdsAlgorithm::Pfw { iterations }),
        "greedypp" => Ok(DdsAlgorithm::GreedyPP {
            iterations,
            certify_exact: flags.get("certify").map(String::as_str) == Some("exact"),
        }),
        "exact" => Ok(DdsAlgorithm::Exact),
        other => Err(format!("unknown DDS algorithm {other}")),
    }
}

fn cmd_uds(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let g = dsd_graph::io::read_undirected_path(input).map_err(|e| e.to_string())?;
    let iterations: usize = match flags.contains_key("iters") {
        true => get_parsed(flags, "iters", 100)?,
        false => get_parsed(flags, "iterations", 100)?,
    };
    let certify = parse_certify(flags)?;
    let gap_epsilon: f64 = get_parsed(flags, "epsilon", 0.01)?;
    let algo = parse_uds_algo(flags)?;
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        dsd_telemetry::set_enabled(true);
        dsd_telemetry::begin_trace(&format!("uds/{input}"));
    }
    // The iterative engines run outside `run_uds` so the certificate and
    // dual bound survive to the report; the enum arms stay the library path.
    let cfg = dsd_core::uds::iterate::IterateConfig { iterations, epsilon: gap_epsilon, certify };
    let (r, iterative) = match algo {
        UdsAlgorithm::GreedyPP { .. } => {
            let it = with_threads(flags, || dsd_core::uds::iterate::greedy_pp(&g, &cfg))?;
            (it.result.clone(), Some(it))
        }
        UdsAlgorithm::Fista { .. } => {
            let it = with_threads(flags, || dsd_core::uds::iterate::fista(&g, &cfg))?;
            (it.result.clone(), Some(it))
        }
        _ => (with_threads(flags, || run_uds(&g, algo))?, None),
    };
    println!(
        "graph: |V|={} |E|={}\nalgorithm: {algo:?}\ndensity: {:.6}\nsubgraph size: {} vertices\niterations: {}\ntime: {:.3?}",
        g.num_vertices(),
        g.num_edges(),
        r.density,
        r.vertices.len(),
        r.stats.iterations,
        r.stats.wall
    );
    if let Some(it) = &iterative {
        println!(
            "rounds: {}\nupper bound: {:.6}\ncertificate: {}",
            it.rounds,
            it.upper_bound,
            certificate_line(&it.certificate)
        );
    }
    if flags.contains_key("print-vertices") {
        println!("vertices: {:?}", r.vertices);
    }
    if let Some(path) = trace_path {
        let trace = dsd_telemetry::end_trace().ok_or("telemetry trace unavailable")?;
        std::fs::write(path, trace.to_json()).map_err(|e| e.to_string())?;
        println!("trace: {path}");
    }
    Ok(())
}

fn cmd_dds(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let g = dsd_graph::io::read_directed_path(input).map_err(|e| e.to_string())?;
    let algo = parse_dds_algo(flags)?;
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        dsd_telemetry::set_enabled(true);
        dsd_telemetry::begin_trace(&format!("dds/{input}"));
    }
    // The iterative engine runs outside `run_dds` so the certificate
    // survives to the report: the directed Greedy++ has no dual bound, so
    // a budget-bounded run must say `budget-exhausted` rather than let
    // the fixed-budget stop read as convergence.
    let (r, iterative) = match algo {
        DdsAlgorithm::GreedyPP { iterations, certify_exact } => {
            let cfg = dsd_core::dds::iterate::DdsIterateConfig { iterations, certify_exact };
            let it = with_threads(flags, || dsd_core::dds::iterate::greedy_pp_dds(&g, &cfg))?;
            (it.result.clone(), Some(it))
        }
        _ => (with_threads(flags, || run_dds(&g, algo))?, None),
    };
    println!(
        "graph: |V|={} |E|={}\nalgorithm: {algo:?}\ndensity: {:.6}\n|S|={} |T|={}\niterations: {}\ntime: {:.3?}",
        g.num_vertices(),
        g.num_edges(),
        r.density,
        r.s.len(),
        r.t.len(),
        r.stats.iterations,
        r.stats.wall
    );
    if let Some(it) = &iterative {
        println!("rounds: {}\ncertificate: {}", it.rounds, it.certificate_label());
    }
    if flags.contains_key("print-vertices") {
        println!("S: {:?}\nT: {:?}", r.s, r.t);
    }
    if let Some(path) = trace_path {
        let trace = dsd_telemetry::end_trace().ok_or("telemetry trace unavailable")?;
        std::fs::write(path, trace.to_json()).map_err(|e| e.to_string())?;
        println!("trace: {path}");
    }
    Ok(())
}

/// Runs one engine under the full flight recorder — spans, histograms, and
/// allocation accounting — then prints the summary and optionally exports
/// the `dsd-trace/v2` JSON, a chrome://tracing trace-event file, and
/// flamegraph-ready folded stacks.
///
/// Graph ingest happens *inside* the trace so the IO/ingest spans are part
/// of the recorded tree, unlike `dsd uds --trace` which only traces the
/// decomposition itself.
fn cmd_profile(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let directed = flags.contains_key("directed");
    dsd_telemetry::set_enabled(true);
    dsd_telemetry::begin_trace(&format!("profile/{input}"));
    let (density, size) = if directed {
        let algo = parse_dds_algo(flags)?;
        let g = dsd_graph::io::read_directed_path(input).map_err(|e| e.to_string())?;
        let r = with_threads(flags, || run_dds(&g, algo))?;
        println!("graph: |V|={} |E|={}\nalgorithm: {algo:?}", g.num_vertices(), g.num_edges());
        (r.density, r.s.len() + r.t.len())
    } else {
        let algo = parse_uds_algo(flags)?;
        let g = dsd_graph::io::read_undirected_path(input).map_err(|e| e.to_string())?;
        let r = with_threads(flags, || run_uds(&g, algo))?;
        println!("graph: |V|={} |E|={}\nalgorithm: {algo:?}", g.num_vertices(), g.num_edges());
        (r.density, r.vertices.len())
    };
    let trace = dsd_telemetry::end_trace().ok_or("telemetry trace unavailable")?;
    println!("density: {density:.6}\nsubgraph size: {size} vertices");

    let views = vec![dsd_telemetry::report::view(&trace)];
    println!();
    print!("{}", dsd_telemetry::report::render_phase_table(&views));
    println!();
    print!("{}", dsd_telemetry::report::render_span_summary(&views[0]));
    let hists = dsd_telemetry::report::render_histograms(&views[0]);
    if !hists.is_empty() {
        println!();
        print!("{hists}");
    }
    let alloc = dsd_telemetry::report::render_alloc(&views[0]);
    if !alloc.is_empty() {
        println!();
        print!("{alloc}");
    }

    if let Some(path) = flags.get("trace") {
        std::fs::write(path, trace.to_json()).map_err(|e| e.to_string())?;
        println!("trace: {path}");
    }
    if let Some(path) = flags.get("chrome") {
        std::fs::write(path, dsd_telemetry::export::chrome_trace_json(&trace))
            .map_err(|e| e.to_string())?;
        println!("chrome trace: {path} (load via chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = flags.get("folded") {
        std::fs::write(path, dsd_telemetry::export::folded_stacks(&trace))
            .map_err(|e| e.to_string())?;
        println!("folded stacks: {path} (feed to flamegraph.pl)");
    }
    Ok(())
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<(), String> {
    let model = flags.get("model").ok_or("--model is required")?;
    let out = flags.get("out").ok_or("--out is required")?;
    let n: usize = get_parsed(flags, "n", 1000)?;
    let m: usize = get_parsed(flags, "m", 5000)?;
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    let gamma: f64 = get_parsed(flags, "gamma", 2.3)?;
    let directed = flags.contains_key("directed");
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    if directed {
        let g = match model.as_str() {
            "er" => dsd_graph::gen::erdos_renyi_directed(n, m, seed),
            "chung-lu" => dsd_graph::gen::chung_lu_directed(n, m, gamma, gamma, seed),
            "rmat" => {
                let scale = (n as f64).log2().ceil() as u32;
                dsd_graph::gen::rmat_directed(scale, m, dsd_graph::gen::RmatParams::default(), seed)
            }
            other => return Err(format!("unknown directed model {other}")),
        };
        dsd_graph::io::write_directed(&g, file).map_err(|e| e.to_string())?;
        println!("wrote directed graph |V|={} |E|={} to {out}", g.num_vertices(), g.num_edges());
    } else {
        let g = match model.as_str() {
            "er" => dsd_graph::gen::erdos_renyi(n, m, seed),
            "chung-lu" => dsd_graph::gen::chung_lu(n, m, gamma, seed),
            "ba" => dsd_graph::gen::barabasi_albert(n, (m / n).max(1), seed),
            "rmat" => {
                let scale = (n as f64).log2().ceil() as u32;
                dsd_graph::gen::rmat(scale, m, dsd_graph::gen::RmatParams::default(), seed)
            }
            other => return Err(format!("unknown undirected model {other}")),
        };
        dsd_graph::io::write_undirected(&g, file).map_err(|e| e.to_string())?;
        println!("wrote undirected graph |V|={} |E|={} to {out}", g.num_vertices(), g.num_edges());
    }
    Ok(())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    if flags.contains_key("directed") {
        let g = dsd_graph::io::read_directed_path(input).map_err(|e| e.to_string())?;
        let s = dsd_graph::stats::directed_stats(&g);
        println!(
            "|V|={} |E|={} d+max={} d-max={}",
            s.num_vertices, s.num_edges, s.max_out_degree, s.max_in_degree
        );
    } else {
        let g = dsd_graph::io::read_undirected_path(input).map_err(|e| e.to_string())?;
        let s = dsd_graph::stats::undirected_stats(&g);
        println!(
            "|V|={} |E|={} dmax={} avg={:.2}",
            s.num_vertices, s.num_edges, s.max_degree, s.avg_degree
        );
    }
    Ok(())
}

/// Writes a full decomposition (core numbers, truss numbers, or w-induced
/// induce-numbers) to a file, one record per line.
fn cmd_decompose(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::Write;
    let input = flags.get("input").ok_or("--input is required")?;
    let out_path = flags.get("out").ok_or("--out is required")?;
    let what = flags.get("what").ok_or("--what is required (core|truss|induce)")?;
    let mut out =
        std::io::BufWriter::new(std::fs::File::create(out_path).map_err(|e| e.to_string())?);
    match what.as_str() {
        "core" => {
            let g = dsd_graph::io::read_undirected_path(input).map_err(|e| e.to_string())?;
            let d = dsd_core::uds::bz::bz_decomposition(&g);
            writeln!(out, "# vertex core_number (k* = {})", d.k_star).map_err(|e| e.to_string())?;
            for (v, c) in d.core.iter().enumerate() {
                writeln!(out, "{v} {c}").map_err(|e| e.to_string())?;
            }
            println!("wrote {} core numbers (k* = {}) to {out_path}", d.core.len(), d.k_star);
        }
        "truss" => {
            let g = dsd_graph::io::read_undirected_path(input).map_err(|e| e.to_string())?;
            let d = dsd_core::uds::truss::truss_decomposition(&g);
            writeln!(out, "# u v truss_number (k_max = {})", d.k_max).map_err(|e| e.to_string())?;
            for ((u, v), t) in d.edges.iter().zip(d.truss.iter()) {
                writeln!(out, "{u} {v} {t}").map_err(|e| e.to_string())?;
            }
            println!("wrote {} truss numbers (k_max = {}) to {out_path}", d.truss.len(), d.k_max);
        }
        "induce" => {
            let g = dsd_graph::io::read_directed_path(input).map_err(|e| e.to_string())?;
            let d = dsd_core::dds::winduced::w_decomposition(&g);
            writeln!(out, "# u v induce_number (w* = {})", d.w_star).map_err(|e| e.to_string())?;
            for ((u, v), w) in
                dsd_core::dds::winduced::edge_endpoints(&g).zip(d.induce_number.iter())
            {
                writeln!(out, "{u} {v} {w}").map_err(|e| e.to_string())?;
            }
            println!(
                "wrote {} induce-numbers (w* = {}) to {out_path}",
                d.induce_number.len(),
                d.w_star
            );
        }
        other => return Err(format!("unknown decomposition {other}")),
    }
    out.flush().map_err(|e| e.to_string())?;
    Ok(())
}

/// Loads a base graph from any on-disk format — text edge list, binary
/// v1, or packed v2, always decompressed to plain CSR (the dynamic engine
/// mutates plain CSR between versions) — and stands up the incremental
/// decomposition state. Shared by `dsd update` and `dsd serve` so both
/// apply deltas through the exact same entry point.
fn load_dynamic_state(
    path: &str,
    directed: bool,
) -> Result<dsd_core::dynamic::DynamicState, String> {
    if directed {
        let g = dsd_graph::io::read_directed_any_path(path).map_err(|e| e.to_string())?;
        Ok(dsd_core::dynamic::DynamicState::new_directed(g))
    } else {
        let g = dsd_graph::io::read_undirected_any_path(path).map_err(|e| e.to_string())?;
        Ok(dsd_core::dynamic::DynamicState::new_undirected(g))
    }
}

/// Applies an edge-delta file to a base graph and maintains the
/// decomposition certificate incrementally from the previous version's
/// fixed point (`dsd_core::dynamic`): the k*-core vector re-converges
/// from the affected frontier only, and the w-induced peel re-runs only
/// below the batch's cutoff weight with everything above it frozen.
fn cmd_update(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::Write as _;
    let input = flags.get("input").ok_or("--input is required")?;
    let delta_path = flags.get("delta").ok_or("--delta is required")?;
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        dsd_telemetry::set_enabled(true);
        dsd_telemetry::begin_trace(&format!("update/{input}"));
    }
    let batch = dsd_graph::DeltaBatch::load(delta_path).map_err(|e| e.to_string())?;
    println!(
        "delta: {} inserts, {} removes ({delta_path})",
        batch.inserts().len(),
        batch.removes().len()
    );
    let directed = flags.contains_key("directed");
    let (state, n0, m0, outcome) = with_threads(flags, || {
        let mut state = load_dynamic_state(input, directed)?;
        let (n0, m0) = (state.num_vertices(), state.num_edges());
        let outcome = state.apply_batch(&batch).map_err(|e| e.to_string())?;
        Ok::<_, String>((state, n0, m0, outcome))
    })??;
    println!("{}", state.update_report(n0, m0, &outcome));
    if let Some(out) = flags.get("out") {
        let f = std::fs::File::create(out).map_err(|e| e.to_string())?;
        match &state {
            dsd_core::dynamic::DynamicState::Undirected(s) => {
                dsd_graph::io::write_undirected(s.graph(), f).map_err(|e| e.to_string())?;
            }
            dsd_core::dynamic::DynamicState::Directed(s) => {
                dsd_graph::io::write_directed(s.graph(), f).map_err(|e| e.to_string())?;
            }
        }
        println!("updated graph: {out}");
    }
    if let Some(path) = trace_path {
        let trace = dsd_telemetry::end_trace().ok_or("telemetry trace unavailable")?;
        std::fs::write(path, trace.to_json()).map_err(|e| e.to_string())?;
        println!("trace: {path}");
    }
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    Ok(())
}

/// Starts the snapshot-isolated query daemon (`dsd-serve`): load once,
/// decompose once, then answer length-prefixed JSON queries until a
/// `shutdown` op arrives. `--threads` sets the engine pool used for the
/// initial decomposition, snapshot rebuilds, and per-query Greedy++ runs —
/// matching it to a one-shot run's `--threads` makes answers bit-identical.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::io::Write as _;
    let input = flags.get("input").ok_or("--input is required")?;
    let directed = flags.contains_key("directed");
    let workers: usize = get_parsed(flags, "workers", 0)?;
    let pool_threads: usize = get_parsed(flags, "threads", 0)?;
    let cfg =
        dsd_serve::ServeConfig { workers, pool_threads, record: !flags.contains_key("no-record") };
    let state = with_threads(flags, || load_dynamic_state(input, directed))??;
    println!(
        "serving {input}: |V|={} |E|={} ({}), {} = {}",
        state.num_vertices(),
        state.num_edges(),
        if directed { "directed" } else { "undirected" },
        if directed { "w*" } else { "k*" },
        state.certificate_value()
    );
    let server = if let Some(path) = flags.get("socket") {
        #[cfg(unix)]
        {
            let server = dsd_serve::Server::start_unix(state, path.clone(), cfg)
                .map_err(|e| e.to_string())?;
            println!("listening on unix:{path}");
            server
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err("--socket requires a Unix platform; use --listen".to_string());
        }
    } else {
        let listen = flags.get("listen").map(String::as_str).unwrap_or("127.0.0.1:0");
        let server = dsd_serve::Server::start_tcp(state, listen, cfg).map_err(|e| e.to_string())?;
        let addr = server.local_addr().ok_or("TCP daemon has no local address")?;
        println!("listening on {addr}");
        server
    };
    // Scripted clients (the CI smoke step) parse the "listening on" line,
    // so it must hit the pipe before the accept loop settles in.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.join();
    println!("shutdown complete");
    Ok(())
}

/// Compresses an edge-list graph into the delta-varint binary v2 format.
///
/// Vertices are renumbered by descending degree first (compression works on
/// gaps between sorted neighbor ids, and degree clustering shrinks the gaps
/// around the hubs) unless `--no-reorder` is given; the achieved bytes/edge
/// is printed and, with `--trace FILE`, recorded alongside the encode phase
/// timings in a `dsd-trace/v2` JSON file.
fn cmd_pack(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let out = flags.get("out").ok_or("--out is required")?;
    let reorder = !flags.contains_key("no-reorder");
    let spill_arcs: usize = get_parsed(flags, "spill-arcs", 0)?;
    let spill = (spill_arcs > 0).then(|| dsd_graph::SpillConfig::with_shard_arcs(spill_arcs));
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        dsd_telemetry::set_enabled(true);
        dsd_telemetry::begin_trace(&format!("pack/{input}"));
    }
    let (arcs, raw_bytes, packed_bytes, bytes_per_arc) = if flags.contains_key("directed") {
        let g = match &spill {
            Some(cfg) => dsd_graph::io::read_directed_path_spill(input, cfg),
            None => dsd_graph::io::read_directed_path(input),
        }
        .map_err(|e| e.to_string())?;
        let g =
            if reorder { dsd_graph::reorder::by_degree_descending_directed(&g).graph } else { g };
        let c = dsd_graph::CompressedDigraph::from_graph(&g);
        dsd_graph::binio::write_compressed_directed_path(&c, out).map_err(|e| e.to_string())?;
        // Plain CSR stores each edge twice (out + in adjacency) at 4 bytes.
        (g.num_edges() as u64, 8 * g.num_edges() as u64, c.total_bytes(), c.bytes_per_arc())
    } else {
        let g = match &spill {
            Some(cfg) => dsd_graph::io::read_undirected_path_spill(input, cfg),
            None => dsd_graph::io::read_undirected_path(input),
        }
        .map_err(|e| e.to_string())?;
        let g = if reorder { dsd_graph::reorder::by_degree_descending(&g).graph } else { g };
        let c = dsd_graph::CompressedCsr::from_graph(&g);
        dsd_graph::binio::write_compressed_undirected_path(&c, out).map_err(|e| e.to_string())?;
        // Plain CSR stores each undirected edge in both endpoint lists.
        (g.num_edges() as u64, 8 * g.num_edges() as u64, c.total_bytes(), c.bytes_per_arc())
    };
    println!(
        "packed {input} -> {out}\nedges: {arcs}\nreorder: {reorder}\nadjacency bytes: {packed_bytes} (plain CSR: {raw_bytes})\nbytes/arc: {bytes_per_arc:.3}"
    );
    if let Some(path) = trace_path {
        let trace = dsd_telemetry::end_trace().ok_or("telemetry trace unavailable")?;
        std::fs::write(path, trace.to_json()).map_err(|e| e.to_string())?;
        println!("trace: {path}");
    }
    Ok(())
}
