//! `trace_report` — render per-round decomposition traces as text tables.
//!
//! ```text
//! trace_report FILE... [--rounds N] [--no-counters]
//! ```
//!
//! Each `FILE` is either a raw `dsd-trace/v2` (or legacy `dsd-trace/v1`)
//! document (one trace), a `dsd-telemetry-section/v1` object
//! (`{"traces": [...]}`), or a `bench_report --trace` output whose
//! `telemetry` key holds such a section. Every trace is validated against
//! the schema before anything is rendered — a malformed file exits
//! non-zero with a field-level error, which is how CI guards the trace
//! JSON contract.
//!
//! Output: one phase-breakdown summary table across all traces (the
//! Table 6-style "where did the time go" view), the non-zero engine
//! counters, a per-round curve per trace (the Table 7-style
//! shrinking-graph view), and — for v2 traces that carry them — the span
//! tree summary, log-bucketed histograms, and allocation accounting of
//! the flight recorder. `--rounds N` caps the curve rows per trace
//! (default 8, the middle of longer traces is elided; 0 disables the
//! curves entirely).

use std::process::ExitCode;

use dsd_telemetry::json::{self, Value};
use dsd_telemetry::report::{
    render_alloc, render_counters, render_histograms, render_phase_table, render_round_curve,
    render_span_summary, view_from_json, TraceView,
};

fn usage() -> ExitCode {
    eprintln!("usage: trace_report FILE... [--rounds N] [--no-counters]");
    ExitCode::from(2)
}

/// Pulls the trace documents out of a parsed file: a raw trace, a
/// telemetry section, or a bench report wrapping one.
fn trace_values(doc: &Value) -> Result<Vec<&Value>, String> {
    let obj = doc.as_object().ok_or("document must be a JSON object")?;
    let section = match obj.get("telemetry") {
        // A bench report without --trace has no telemetry key (or null).
        Some(Value::Null) | None if obj.get("traces").is_none() && obj.get("schema").is_some() => {
            // Raw trace documents carry "schema": "dsd-trace/v2" (or the
            // legacy "dsd-trace/v1") and no
            // "traces" array; let the schema validator decide.
            return Ok(vec![doc]);
        }
        Some(Value::Null) => return Err("report has a null 'telemetry' section".to_string()),
        Some(v) => v.as_object().ok_or("'telemetry' must be an object")?,
        None => obj,
    };
    let traces = section
        .get("traces")
        .ok_or("no 'traces' array found (did bench_report run with --trace?)")?
        .as_array()
        .ok_or("'traces' must be an array")?;
    if traces.is_empty() {
        return Err("'traces' array is empty".to_string());
    }
    Ok(traces.iter().collect())
}

fn load_views(path: &str) -> Result<Vec<TraceView>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    trace_values(&doc)?.into_iter().map(view_from_json).collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut rounds = 8usize;
    let mut counters = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rounds" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                rounds = v;
                i += 2;
            }
            "--no-counters" => {
                counters = false;
                i += 1;
            }
            a if a.starts_with("--") => return usage(),
            a => {
                files.push(a.to_string());
                i += 1;
            }
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut views: Vec<TraceView> = Vec::new();
    for path in &files {
        match load_views(path) {
            Ok(vs) => views.extend(vs),
            Err(e) => {
                eprintln!("trace_report: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    print!("{}", render_phase_table(&views));
    if counters {
        println!();
        print!("{}", render_counters(&views));
    }
    if rounds > 0 {
        for v in &views {
            println!();
            print!("{}", render_round_curve(v, rounds));
        }
    }
    // Flight-recorder sections (empty strings for v1 traces without them).
    for v in &views {
        for section in [render_span_summary(v), render_histograms(v), render_alloc(v)] {
            if !section.is_empty() {
                println!();
                print!("{section}");
            }
        }
    }
    ExitCode::SUCCESS
}
